// Copyright (c) zdb authors. Licensed under the MIT license.

#include "exec/executor.h"

#include <algorithm>
#include <cassert>
#include <thread>
#include <unordered_set>

#include "shard/scatter.h"

namespace zdb {

QueryExecutor::QueryExecutor(SpatialIndex* index, size_t threads)
    : index_(index), indexes_{index} {
  assert(threads >= 1);
  if (threads < 1) threads = 1;
  stats_.workers.resize(threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryExecutor::QueryExecutor(std::vector<SpatialIndex*> indexes,
                             shard::ShardRouting routing, size_t threads)
    : index_(indexes.empty() ? nullptr : indexes[0]),
      indexes_(std::move(indexes)),
      routing_(std::make_unique<shard::ShardRouting>(std::move(routing))) {
  assert(!indexes_.empty() && indexes_.size() == routing_->shards());
  assert(threads >= 1);
  if (threads < 1) threads = 1;
  stats_.workers.resize(threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void QueryExecutor::ResetStats() {
  for (auto& w : stats_.workers) w = WorkerStats{};
  stats_.writer = WorkerStats{};
}

void QueryExecutor::WorkerLoop(size_t worker_idx) {
  // The worker's I/O shadow: the buffer pool charges this thread's pins,
  // hits and misses here without any shared-counter races.
  SetThreadIoStats(&stats_.workers[worker_idx].io);
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      while (!stop_ && jobs_.empty()) cv_.Wait(mu_);
      if (jobs_.empty()) break;  // stop_ and nothing left to drain
      job = jobs_.front();
    }
    ProcessJob(job.get(), worker_idx);
    {
      MutexLock lock(mu_);
      // Whichever worker drains the job retires it; the shared_ptr
      // identity check makes the pop idempotent across workers.
      if (!jobs_.empty() && jobs_.front() == job) jobs_.pop_front();
    }
  }
  SetThreadIoStats(nullptr);
}

void QueryExecutor::ProcessJob(Job* job, size_t worker_idx) {
  for (;;) {
    const size_t item = job->next.fetch_add(1, std::memory_order_relaxed);
    if (item >= job->count) return;
    bool skip;
    {
      MutexLock jl(job->mu);
      skip = job->failed;
    }
    if (!skip) {
      Status s = job->fn(item, worker_idx);
      ++stats_.workers[worker_idx].tasks;
      if (!s.ok()) {
        MutexLock jl(job->mu);
        if (!job->failed) {
          job->failed = true;
          job->first_error = std::move(s);
        }
      }
    }
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->count) {
      MutexLock jl(job->mu);
      job->cv.NotifyAll();
    }
  }
}

Status QueryExecutor::RunJob(
    size_t count, std::function<Status(size_t item, size_t worker)> fn) {
  if (count == 0) return Status::OK();
  auto job = std::make_shared<Job>();
  job->fn = std::move(fn);
  job->count = count;
  {
    MutexLock lock(mu_);
    jobs_.push_back(job);
  }
  cv_.NotifyAll();
  MutexLock jl(job->mu);
  while (job->done.load(std::memory_order_acquire) != job->count) {
    job->cv.Wait(job->mu);
  }
  return job->failed ? job->first_error : Status::OK();
}

Result<std::vector<std::vector<ObjectId>>> QueryExecutor::WindowBatch(
    const std::vector<Rect>& windows) {
  std::vector<std::vector<ObjectId>> out(windows.size());
  ZDB_RETURN_IF_ERROR(
      RunJob(windows.size(), [&](size_t i, size_t w) -> Status {
        QueryStats qs;
        auto r = sharded()
                     ? shard::ScatterWindow(indexes_, *routing_, windows[i],
                                            &qs)
                     : index_->WindowQuery(windows[i], &qs);
        if (!r.ok()) return r.status();
        out[i] = std::move(r).value();
        stats_.workers[w].query.Add(qs);
        return Status::OK();
      }));
  return out;
}

Result<std::vector<std::vector<ObjectId>>> QueryExecutor::PointBatch(
    const std::vector<Point>& points) {
  std::vector<std::vector<ObjectId>> out(points.size());
  ZDB_RETURN_IF_ERROR(
      RunJob(points.size(), [&](size_t i, size_t w) -> Status {
        QueryStats qs;
        auto r = sharded()
                     ? shard::ScatterPoint(indexes_, *routing_, points[i], &qs)
                     : index_->PointQuery(points[i], &qs);
        if (!r.ok()) return r.status();
        out[i] = std::move(r).value();
        stats_.workers[w].query.Add(qs);
        return Status::OK();
      }));
  return out;
}

Result<std::vector<std::vector<std::pair<ObjectId, double>>>>
QueryExecutor::NearestBatch(const std::vector<Point>& points, size_t k) {
  std::vector<std::vector<std::pair<ObjectId, double>>> out(points.size());
  ZDB_RETURN_IF_ERROR(
      RunJob(points.size(), [&](size_t i, size_t w) -> Status {
        QueryStats qs;
        auto r = sharded() ? shard::ScatterNearest(indexes_, *routing_,
                                                   points[i], k, &qs)
                           : index_->NearestNeighbors(points[i], k, &qs);
        if (!r.ok()) return r.status();
        out[i] = std::move(r).value();
        stats_.workers[w].query.Add(qs);
        return Status::OK();
      }));
  return out;
}

Result<std::vector<ObjectId>> QueryExecutor::ParallelWindowQuery(
    const Rect& window, QueryStats* stats) {
  if (sharded()) return ShardedParallelWindow(window, stats);
  if (index_->snapshots_enabled()) {
    // Latch-free path: pin ONE epoch for the whole plan/slice/refine
    // pipeline so every hook call observes the same committed state —
    // the snapshot equivalent of the single reader section below. A
    // group-commit rollback can invalidate the pinned epoch mid-flight
    // (Aborted); re-pin at the re-published epoch and retry.
    for (int attempt = 0;; ++attempt) {
      const EpochPin pin = index_->PinEpoch();
      auto r = ParallelWindowBody(window, stats, &pin);
      if (r.ok() || !r.status().IsAborted() || attempt >= 2) return r;
    }
  }
  // One reader section spanning plan, slices and refinement: the hooks
  // themselves do not latch (a per-call latch could admit a writer
  // between the plan and its slices), so the driver pins the index state
  // here. The workers only run the unlatched hooks — they never acquire
  // the latch themselves, which keeps a waiting writer from wedging the
  // job between the driver's shared hold and a worker's fresh acquire.
  auto section = index_->ReaderSection();
  return ParallelWindowBody(window, stats, nullptr);
}

Result<std::vector<ObjectId>> QueryExecutor::ParallelWindowBody(
    const Rect& window, QueryStats* stats, const EpochPin* pin) {
  // With a pin, every participating thread installs its own snapshot
  // view: the TLS view is per-thread, so the driver's scope (for
  // PlanWindow) does not cover the workers — each job lambda opens one
  // before touching the index. Without a pin the caller already holds
  // the shared latch and the scopes collapse to nothing.
  std::unique_ptr<SpatialIndex::SnapshotReadScope> driver_scope;
  if (pin != nullptr) {
    ZDB_ASSIGN_OR_RETURN(driver_scope, index_->OpenSnapshot(*pin));
  }
  WindowPlan plan;
  ZDB_ASSIGN_OR_RETURN(plan, index_->PlanWindow(window));
  const size_t items = plan.work_items();

  // Slice the work list: a few slices per worker for load balance, but
  // never more slices than items (each slice pays one CandidateSink).
  const size_t slices =
      std::max<size_t>(1, std::min(items, threads() * 4));
  std::vector<std::vector<ObjectId>> parts(slices);
  std::vector<QueryStats> part_stats(slices);
  ZDB_RETURN_IF_ERROR(RunJob(slices, [&](size_t i, size_t w) -> Status {
    std::unique_ptr<SpatialIndex::SnapshotReadScope> scope;
    if (pin != nullptr) {
      ZDB_ASSIGN_OR_RETURN(scope, index_->OpenSnapshot(*pin));
    }
    const size_t lo = items * i / slices;
    const size_t hi = items * (i + 1) / slices;
    auto r = index_->ExecuteWindowPlanSlice(plan, lo, hi, &part_stats[i]);
    if (!r.ok()) return r.status();
    parts[i] = std::move(r).value();
    stats_.workers[w].query.Add(part_stats[i]);
    return Status::OK();
  }));

  // Merge with global dedup: each slice deduplicated locally, but an
  // object's redundant entries can land in different slices.
  std::unordered_set<ObjectId> seen;
  std::vector<ObjectId> candidates;
  for (const auto& part : parts) {
    for (ObjectId oid : part) {
      if (seen.insert(oid).second) candidates.push_back(oid);
    }
  }
  std::sort(candidates.begin(), candidates.end());

  // Parallel refinement over contiguous chunks; candidates are sorted, so
  // concatenating the chunk results in order keeps the output sorted.
  const size_t chunks =
      std::max<size_t>(1, std::min(candidates.size(), threads()));
  std::vector<std::vector<ObjectId>> refined(chunks);
  std::vector<QueryStats> refine_stats(chunks);
  ZDB_RETURN_IF_ERROR(RunJob(chunks, [&](size_t i, size_t w) -> Status {
    std::unique_ptr<SpatialIndex::SnapshotReadScope> scope;
    if (pin != nullptr) {
      ZDB_ASSIGN_OR_RETURN(scope, index_->OpenSnapshot(*pin));
    }
    const size_t lo = candidates.size() * i / chunks;
    const size_t hi = candidates.size() * (i + 1) / chunks;
    std::vector<ObjectId> chunk(candidates.begin() + lo,
                                candidates.begin() + hi);
    stats_.workers[w].refinements += chunk.size();
    auto r = index_->RefineWindowCandidates(window, std::move(chunk),
                                            &refine_stats[i]);
    if (!r.ok()) return r.status();
    refined[i] = std::move(r).value();
    stats_.workers[w].query.Add(refine_stats[i]);
    return Status::OK();
  }));

  std::vector<ObjectId> results;
  for (auto& chunk : refined) {
    results.insert(results.end(), chunk.begin(), chunk.end());
  }
  if (stats != nullptr) {
    for (const auto& qs : part_stats) stats->Add(qs);
    for (const auto& qs : refine_stats) stats->Add(qs);
    stats->unique_candidates = candidates.size();
    stats->results = results.size();
  }
  return results;
}

Result<std::vector<ObjectId>> QueryExecutor::ShardedParallelWindow(
    const Rect& window, QueryStats* stats) {
  // Scatter set: only the shards whose prefix regions the window
  // overlaps participate; non-overlapping shards are never touched.
  std::vector<uint32_t> shards;
  uint64_t mask = routing_->MaskForRect(window);
  while (mask != 0) {
    shards.push_back(static_cast<uint32_t>(__builtin_ctzll(mask)));
    mask &= mask - 1;
  }
  const bool snapshots = index_->snapshots_enabled();
  for (int attempt = 0;; ++attempt) {
    // A group-commit rollback on any participating shard invalidates
    // that shard's pinned epoch mid-flight (Aborted); re-pin everything
    // and retry, like the single-shard path.
    auto r = ShardedParallelWindowBody(window, stats, shards, snapshots);
    if (r.ok() || !snapshots || !r.status().IsAborted() || attempt >= 2) {
      return r;
    }
  }
}

Result<std::vector<ObjectId>> QueryExecutor::ShardedParallelWindowBody(
    const Rect& window, QueryStats* stats,
    const std::vector<uint32_t>& shards, bool snapshots) {
  const size_t ns = shards.size();

  // Pin one epoch per participating shard (or hold its reader latch):
  // each shard's plan/slice/refine calls all observe that shard's
  // pinned state — per-shard consistency, not one cross-shard state
  // (the scatter-gather contract, see shard/scatter.h). Latches are
  // reader-shared and writers take one shard at a time, so holding
  // several shard latches cannot deadlock the router fan-out.
  EpochPinSet pins(ns);
  std::vector<ReaderLatch> sections;
  std::vector<WindowPlan> plans(ns);
  for (size_t i = 0; i < ns; ++i) {
    SpatialIndex* ix = indexes_[shards[i]];
    std::unique_ptr<SpatialIndex::SnapshotReadScope> driver_scope;
    if (snapshots) {
      const EpochPin& pin = pins.Add(ix->PinEpoch());
      ZDB_ASSIGN_OR_RETURN(driver_scope, ix->OpenSnapshot(pin));
    } else {
      sections.push_back(ix->ReaderSection());
    }
    ZDB_ASSIGN_OR_RETURN(plans[i], ix->PlanWindow(window));
  }

  // Flatten every shard's slice work into ONE pool job: the workers
  // parallelize across shards first (each claims whatever shard's slice
  // is next), so a skewed shard cannot serialize the query.
  struct ShardSlice {
    size_t shard;  ///< index into `shards`/`plans`
    size_t lo, hi;
  };
  std::vector<ShardSlice> work;
  for (size_t i = 0; i < ns; ++i) {
    const size_t items = plans[i].work_items();
    const size_t slices = std::max<size_t>(
        1, std::min(items, std::max<size_t>(1, threads() * 4 / ns)));
    for (size_t j = 0; j < slices; ++j) {
      work.push_back({i, items * j / slices, items * (j + 1) / slices});
    }
  }
  std::vector<std::vector<ObjectId>> parts(work.size());
  std::vector<QueryStats> part_stats(work.size());
  ZDB_RETURN_IF_ERROR(RunJob(work.size(), [&](size_t i, size_t w) -> Status {
    SpatialIndex* ix = indexes_[shards[work[i].shard]];
    std::unique_ptr<SpatialIndex::SnapshotReadScope> scope;
    if (snapshots) {
      ZDB_ASSIGN_OR_RETURN(scope, ix->OpenSnapshot(pins[work[i].shard]));
    }
    auto r = ix->ExecuteWindowPlanSlice(plans[work[i].shard], work[i].lo,
                                        work[i].hi, &part_stats[i]);
    if (!r.ok()) return r.status();
    parts[i] = std::move(r).value();
    stats_.workers[w].query.Add(part_stats[i]);
    return Status::OK();
  }));

  // Global dedup by oid; a replicated object is refined only in the
  // shard that surfaced it first (replicas store identical exact
  // geometry, so any owning shard refines it correctly).
  std::unordered_set<ObjectId> seen;
  std::vector<std::vector<ObjectId>> cand(ns);
  for (size_t i = 0; i < work.size(); ++i) {
    for (ObjectId oid : parts[i]) {
      if (seen.insert(oid).second) cand[work[i].shard].push_back(oid);
    }
  }

  // Refinement: again one flattened job over per-shard candidate chunks.
  std::vector<ShardSlice> rwork;
  for (size_t i = 0; i < ns; ++i) {
    const size_t n = cand[i].size();
    const size_t chunks = std::max<size_t>(
        1, std::min(n, std::max<size_t>(1, threads() / ns + 1)));
    for (size_t j = 0; j < chunks; ++j) {
      rwork.push_back({i, n * j / chunks, n * (j + 1) / chunks});
    }
  }
  std::vector<std::vector<ObjectId>> refined(rwork.size());
  std::vector<QueryStats> refine_stats(rwork.size());
  ZDB_RETURN_IF_ERROR(RunJob(rwork.size(), [&](size_t i, size_t w) -> Status {
    SpatialIndex* ix = indexes_[shards[rwork[i].shard]];
    std::unique_ptr<SpatialIndex::SnapshotReadScope> scope;
    if (snapshots) {
      ZDB_ASSIGN_OR_RETURN(scope, ix->OpenSnapshot(pins[rwork[i].shard]));
    }
    const auto& list = cand[rwork[i].shard];
    std::vector<ObjectId> chunk(list.begin() + rwork[i].lo,
                                list.begin() + rwork[i].hi);
    stats_.workers[w].refinements += chunk.size();
    auto r = ix->RefineWindowCandidates(window, std::move(chunk),
                                        &refine_stats[i]);
    if (!r.ok()) return r.status();
    refined[i] = std::move(r).value();
    stats_.workers[w].query.Add(refine_stats[i]);
    return Status::OK();
  }));

  // Each oid was refined exactly once, so a plain sort yields the same
  // sorted-unique answer SpatialIndex::WindowQuery (and the router's
  // scatter path) returns.
  std::vector<ObjectId> results;
  for (auto& chunk : refined) {
    results.insert(results.end(), chunk.begin(), chunk.end());
  }
  std::sort(results.begin(), results.end());
  if (stats != nullptr) {
    for (const auto& qs : part_stats) stats->Add(qs);
    for (const auto& qs : refine_stats) stats->Add(qs);
    stats->unique_candidates = seen.size();
    stats->results = results.size();
  }
  return results;
}

Result<std::vector<MixedRoundResult>> QueryExecutor::MixedWorkload(
    const std::vector<MixedRound>& rounds) {
  if (sharded()) {
    return Status::InvalidArgument(
        "mixed workload requires a single-shard executor");
  }
  std::vector<MixedRoundResult> out(rounds.size());
  for (size_t r = 0; r < rounds.size(); ++r) {
    out[r].window_results.resize(rounds[r].windows.size());
    out[r].window_epochs.resize(rounds[r].windows.size());
    out[r].point_results.resize(rounds[r].points.size());
    out[r].point_epochs.resize(rounds[r].points.size());
    const size_t nk =
        rounds[r].knn_k > 0 ? rounds[r].knn_points.size() : 0;
    out[r].knn_results.resize(nk);
    out[r].knn_epochs.resize(nk);
  }

  // Dedicated writer: applies the rounds' batches in order, each one an
  // atomic writer section. `writer_status` is only read after join().
  Status writer_status;
  std::thread writer([&] {
    SetThreadIoStats(&stats_.writer.io);
    for (size_t r = 0; r < rounds.size(); ++r) {
      if (rounds[r].writes.empty()) continue;
      auto res = index_->ApplyBatch(rounds[r].writes);
      if (!res.ok()) {
        writer_status = res.status();
        break;
      }
      out[r].inserted = std::move(res).value();
      ++stats_.writer.tasks;
    }
    SetThreadIoStats(nullptr);
  });

  // The query side: per round, one pool job per query type. The writer
  // drifts ahead or behind freely; the epochs bracketing each query tell
  // the caller which oracle states the answer may legally match.
  Status query_status = Status::OK();
  for (size_t r = 0; r < rounds.size() && query_status.ok(); ++r) {
    const MixedRound& round = rounds[r];
    MixedRoundResult& res = out[r];
    if (!round.windows.empty()) {
      query_status =
          RunJob(round.windows.size(), [&](size_t i, size_t w) -> Status {
            QueryStats qs;
            res.window_epochs[i].first = index_->write_epoch();
            auto q = index_->WindowQuery(round.windows[i], &qs);
            res.window_epochs[i].second = index_->write_epoch();
            if (!q.ok()) return q.status();
            res.window_results[i] = std::move(q).value();
            stats_.workers[w].query.Add(qs);
            return Status::OK();
          });
      if (!query_status.ok()) break;
    }
    if (!round.points.empty()) {
      query_status =
          RunJob(round.points.size(), [&](size_t i, size_t w) -> Status {
            QueryStats qs;
            res.point_epochs[i].first = index_->write_epoch();
            auto q = index_->PointQuery(round.points[i], &qs);
            res.point_epochs[i].second = index_->write_epoch();
            if (!q.ok()) return q.status();
            res.point_results[i] = std::move(q).value();
            stats_.workers[w].query.Add(qs);
            return Status::OK();
          });
      if (!query_status.ok()) break;
    }
    if (round.knn_k > 0 && !round.knn_points.empty()) {
      query_status = RunJob(
          round.knn_points.size(), [&](size_t i, size_t w) -> Status {
            QueryStats qs;
            res.knn_epochs[i].first = index_->write_epoch();
            auto q = index_->NearestNeighbors(round.knn_points[i],
                                              round.knn_k, &qs);
            res.knn_epochs[i].second = index_->write_epoch();
            if (!q.ok()) return q.status();
            res.knn_results[i] = std::move(q).value();
            stats_.workers[w].query.Add(qs);
            return Status::OK();
          });
    }
  }

  writer.join();
  ZDB_RETURN_IF_ERROR(writer_status);
  ZDB_RETURN_IF_ERROR(query_status);
  return out;
}

}  // namespace zdb
