// Copyright (c) zdb authors. Licensed under the MIT license.

#include "exec/executor.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace zdb {

QueryExecutor::QueryExecutor(SpatialIndex* index, size_t threads)
    : index_(index) {
  assert(threads >= 1);
  if (threads < 1) threads = 1;
  stats_.workers.resize(threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void QueryExecutor::ResetStats() {
  for (auto& w : stats_.workers) w = WorkerStats{};
}

void QueryExecutor::WorkerLoop(size_t worker_idx) {
  // The worker's I/O shadow: the buffer pool charges this thread's pins,
  // hits and misses here without any shared-counter races.
  SetThreadIoStats(&stats_.workers[worker_idx].io);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
    if (jobs_.empty()) {
      if (stop_) break;
      continue;
    }
    std::shared_ptr<Job> job = jobs_.front();
    lock.unlock();
    ProcessJob(job.get(), worker_idx);
    lock.lock();
    // Whichever worker drains the job retires it; the shared_ptr identity
    // check makes the pop idempotent across workers.
    if (!jobs_.empty() && jobs_.front() == job) jobs_.pop_front();
  }
  SetThreadIoStats(nullptr);
}

void QueryExecutor::ProcessJob(Job* job, size_t worker_idx) {
  for (;;) {
    const size_t item = job->next.fetch_add(1, std::memory_order_relaxed);
    if (item >= job->count) return;
    bool skip;
    {
      std::lock_guard<std::mutex> jl(job->mu);
      skip = job->failed;
    }
    if (!skip) {
      Status s = job->fn(item, worker_idx);
      ++stats_.workers[worker_idx].tasks;
      if (!s.ok()) {
        std::lock_guard<std::mutex> jl(job->mu);
        if (!job->failed) {
          job->failed = true;
          job->first_error = std::move(s);
        }
      }
    }
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->count) {
      std::lock_guard<std::mutex> jl(job->mu);
      job->cv.notify_all();
    }
  }
}

Status QueryExecutor::RunJob(
    size_t count, std::function<Status(size_t item, size_t worker)> fn) {
  if (count == 0) return Status::OK();
  auto job = std::make_shared<Job>();
  job->fn = std::move(fn);
  job->count = count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> jl(job->mu);
  job->cv.wait(jl, [&] {
    return job->done.load(std::memory_order_acquire) == job->count;
  });
  return job->failed ? job->first_error : Status::OK();
}

Result<std::vector<std::vector<ObjectId>>> QueryExecutor::WindowBatch(
    const std::vector<Rect>& windows) {
  std::vector<std::vector<ObjectId>> out(windows.size());
  ZDB_RETURN_IF_ERROR(
      RunJob(windows.size(), [&](size_t i, size_t w) -> Status {
        QueryStats qs;
        auto r = index_->WindowQuery(windows[i], &qs);
        if (!r.ok()) return r.status();
        out[i] = std::move(r).value();
        stats_.workers[w].query.Add(qs);
        return Status::OK();
      }));
  return out;
}

Result<std::vector<std::vector<ObjectId>>> QueryExecutor::PointBatch(
    const std::vector<Point>& points) {
  std::vector<std::vector<ObjectId>> out(points.size());
  ZDB_RETURN_IF_ERROR(
      RunJob(points.size(), [&](size_t i, size_t w) -> Status {
        QueryStats qs;
        auto r = index_->PointQuery(points[i], &qs);
        if (!r.ok()) return r.status();
        out[i] = std::move(r).value();
        stats_.workers[w].query.Add(qs);
        return Status::OK();
      }));
  return out;
}

Result<std::vector<std::vector<std::pair<ObjectId, double>>>>
QueryExecutor::NearestBatch(const std::vector<Point>& points, size_t k) {
  std::vector<std::vector<std::pair<ObjectId, double>>> out(points.size());
  ZDB_RETURN_IF_ERROR(
      RunJob(points.size(), [&](size_t i, size_t w) -> Status {
        QueryStats qs;
        auto r = index_->NearestNeighbors(points[i], k, &qs);
        if (!r.ok()) return r.status();
        out[i] = std::move(r).value();
        stats_.workers[w].query.Add(qs);
        return Status::OK();
      }));
  return out;
}

Result<std::vector<ObjectId>> QueryExecutor::ParallelWindowQuery(
    const Rect& window, QueryStats* stats) {
  WindowPlan plan;
  ZDB_ASSIGN_OR_RETURN(plan, index_->PlanWindow(window));
  const size_t items = plan.work_items();

  // Slice the work list: a few slices per worker for load balance, but
  // never more slices than items (each slice pays one CandidateSink).
  const size_t slices =
      std::max<size_t>(1, std::min(items, threads() * 4));
  std::vector<std::vector<ObjectId>> parts(slices);
  std::vector<QueryStats> part_stats(slices);
  ZDB_RETURN_IF_ERROR(RunJob(slices, [&](size_t i, size_t w) -> Status {
    const size_t lo = items * i / slices;
    const size_t hi = items * (i + 1) / slices;
    auto r = index_->ExecuteWindowPlanSlice(plan, lo, hi, &part_stats[i]);
    if (!r.ok()) return r.status();
    parts[i] = std::move(r).value();
    stats_.workers[w].query.Add(part_stats[i]);
    return Status::OK();
  }));

  // Merge with global dedup: each slice deduplicated locally, but an
  // object's redundant entries can land in different slices.
  std::unordered_set<ObjectId> seen;
  std::vector<ObjectId> candidates;
  for (const auto& part : parts) {
    for (ObjectId oid : part) {
      if (seen.insert(oid).second) candidates.push_back(oid);
    }
  }
  std::sort(candidates.begin(), candidates.end());

  // Parallel refinement over contiguous chunks; candidates are sorted, so
  // concatenating the chunk results in order keeps the output sorted.
  const size_t chunks =
      std::max<size_t>(1, std::min(candidates.size(), threads()));
  std::vector<std::vector<ObjectId>> refined(chunks);
  std::vector<QueryStats> refine_stats(chunks);
  ZDB_RETURN_IF_ERROR(RunJob(chunks, [&](size_t i, size_t w) -> Status {
    const size_t lo = candidates.size() * i / chunks;
    const size_t hi = candidates.size() * (i + 1) / chunks;
    std::vector<ObjectId> chunk(candidates.begin() + lo,
                                candidates.begin() + hi);
    stats_.workers[w].refinements += chunk.size();
    auto r = index_->RefineWindowCandidates(window, std::move(chunk),
                                            &refine_stats[i]);
    if (!r.ok()) return r.status();
    refined[i] = std::move(r).value();
    stats_.workers[w].query.Add(refine_stats[i]);
    return Status::OK();
  }));

  std::vector<ObjectId> results;
  for (auto& chunk : refined) {
    results.insert(results.end(), chunk.begin(), chunk.end());
  }
  if (stats != nullptr) {
    for (const auto& qs : part_stats) stats->Add(qs);
    for (const auto& qs : refine_stats) stats->Add(qs);
    stats->unique_candidates = candidates.size();
    stats->results = results.size();
  }
  return results;
}

}  // namespace zdb
