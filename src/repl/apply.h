// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Applier: the follower side of replication. A dedicated thread dials
// the leader ("tcp://host:port" / "unix://path"), SUBSCRIBEs with the
// last epoch it applied, and replays every pushed LOG_RECORD through
// DB::ApplyReplicated — preassigned-oid replay, so the follower's
// object ids are byte-identical to the leader's. Each applied record is
// acknowledged with a fire-and-forget LOG_ACK (which is also the
// leader's flow-control window release).
//
// Lag accounting: every LOG_RECORD piggybacks the leader's log head
// epoch at send time, so `leader_epoch() - applied_epoch()` is the
// follower's staleness in epochs whenever the applier is connected.
// When it is not connected the follower cannot bound its lag at all —
// WithinStaleness() treats that as infinitely stale.
//
// A dropped connection (leader restart, network blip) is retried with
// exponential backoff; on reconnect the applier resubscribes from its
// applied epoch, and a duplicate-skip guard makes a record replayed
// twice across the reconnect harmless.

#ifndef ZDB_REPL_APPLY_H_
#define ZDB_REPL_APPLY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/socket.h"

namespace zdb {

class DB;

namespace repl {

struct ApplierOptions {
  /// Leader endpoint URI ("tcp://host:port" or "unix://path").
  std::string leader_endpoint;
  /// Epoch the local DB has already applied up to — 0 for a fresh
  /// follower; a restarted follower process passes its predecessor's
  /// applied epoch so it resumes instead of demanding truncated history.
  uint64_t initial_applied_epoch = 0;
  /// Reconnect backoff: doubles from min to max per failed attempt,
  /// resets after a successful subscribe.
  uint32_t reconnect_min_ms = 50;
  uint32_t reconnect_max_ms = 2000;
};

/// Counters surfaced through the follower server's STATS.
struct ApplierStats {
  uint64_t records_applied = 0;
  uint64_t duplicates_skipped = 0;  ///< reconnect overlap, not an error
  uint64_t reconnects = 0;          ///< connection attempts after the first
  uint64_t subscribe_rejects = 0;   ///< leader refused the handshake
  uint64_t stream_errors = 0;       ///< decode/apply failures (drops the link)
  uint64_t applied_epoch = 0;
  uint64_t leader_epoch = 0;  ///< log head last heard from the leader
  bool connected = false;
};

/// The staleness admission rule a follower applies to a bounded query
/// (net/wire.h kNoStalenessBound means unbounded). Free function so the
/// arithmetic is unit-testable without sockets.
[[nodiscard]] bool WithinStaleness(uint64_t leader_epoch,
                                   uint64_t applied_epoch, bool connected,
                                   uint64_t max_lag);

class Applier {
 public:
  /// `db` must outlive the applier and is the applier's to write: all
  /// other writes to a follower DB are rejected at the server layer.
  Applier(DB* db, ApplierOptions options);
  ~Applier();

  Applier(const Applier&) = delete;
  Applier& operator=(const Applier&) = delete;

  /// Validates the endpoint URI and starts the replication thread.
  [[nodiscard]] Status Start();

  /// Stops and joins the thread (interrupting a blocked read or a
  /// backoff sleep); idempotent.
  void Stop();

  uint64_t applied_epoch() const {
    return applied_epoch_.load(std::memory_order_acquire);
  }
  uint64_t leader_epoch() const {
    return leader_epoch_.load(std::memory_order_acquire);
  }
  bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }

  ApplierStats Snapshot() const;

 private:
  void Run();
  /// One subscribe + stream session over the installed socket. Returns
  /// when the connection drops or Stop() is requested.
  void RunSession();
  /// Interruptible backoff sleep; returns false when stopping.
  bool SleepBackoff(uint32_t ms);

  DB* const db_;
  const ApplierOptions options_;

  Mutex mu_;
  CondVar stop_cv_;  ///< wakes a backoff sleep on Stop()
  /// The live session socket. Installed/cleared/shut down under mu_;
  /// the session thread does its blocking reads outside the lock (the
  /// fd stays allocated until the session thread Closes it, and
  /// ShutdownBoth from Stop() is exactly the unblock-a-reader path the
  /// socket layer documents), so the field is deliberately unannotated.
  net::Socket sock_;
  bool stop_requested_ GUARDED_BY(mu_) = false;

  std::atomic<uint64_t> applied_epoch_{0};
  std::atomic<uint64_t> leader_epoch_{0};
  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> records_applied_{0};
  std::atomic<uint64_t> duplicates_skipped_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> subscribe_rejects_{0};
  std::atomic<uint64_t> stream_errors_{0};

  /// The session thread. Deliberately unannotated: callers must
  /// serialize Start/Stop with each other (spawn and join cannot happen
  /// under a mutex) — the same external contract the DB/server
  /// lifecycle already provides.
  std::thread thread_;
  bool started_ GUARDED_BY(mu_) = false;  ///< Start/Stop bookkeeping
};

}  // namespace repl
}  // namespace zdb

#endif  // ZDB_REPL_APPLY_H_
