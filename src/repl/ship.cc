// Copyright (c) zdb authors. Licensed under the MIT license.

#include "repl/ship.h"

#include <algorithm>
#include <utility>

#include "net/wire.h"
#include "repl/record.h"

namespace zdb {
namespace repl {

LogShipper::LogShipper(uint64_t attach_epoch, ShipperOptions options)
    : options_(options),
      head_epoch_(attach_epoch),
      floor_epoch_(attach_epoch) {}

LogShipper::~LogShipper() { Stop(); }

void LogShipper::Start() {
  {
    MutexLock lock(ship_mu_);
    if (started_) return;
    started_ = true;
  }
  thread_ = std::thread([this] { ShipLoop(); });
}

void LogShipper::Stop() {
  {
    MutexLock lock(ship_mu_);
    if (!started_) return;
    stop_ = true;
  }
  ship_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  MutexLock lock(ship_mu_);
  started_ = false;
}

void LogShipper::OnCommit(uint64_t epoch, const WriteBatch& resolved) {
  {
    MutexLock lock(ship_mu_);
    pending_.push_back(Pending{epoch, resolved});
  }
  ship_cv_.NotifyAll();
}

Result<uint64_t> LogShipper::Subscribe(uint64_t token, uint64_t last_applied,
                                       SendFn send) {
  MutexLock lock(ship_mu_);
  if (last_applied < floor_epoch_) {
    return Status::NotFound(
        "log truncated before epoch " + std::to_string(last_applied) +
        " (floor " + std::to_string(floor_epoch_) +
        "); follower must resync from a fresh copy of the leader");
  }
  if (last_applied > head_epoch_) {
    return Status::InvalidArgument(
        "follower claims epoch " + std::to_string(last_applied) +
        " ahead of log head " + std::to_string(head_epoch_));
  }
  // First retained record the follower has not applied. Epochs in the
  // ring are strictly increasing, so a binary search positions the
  // cursor; everything below last_applied was either applied already or
  // evicted (and the floor check above proved the follower has it).
  const auto it = std::upper_bound(
      records_.begin(), records_.end(), last_applied,
      [](uint64_t epoch, const Record& rec) { return epoch < rec.epoch; });
  Follower f;
  f.send = std::move(send);
  f.next_index = base_index_ + static_cast<size_t>(it - records_.begin());
  f.acked_epoch = last_applied;
  followers_[token] = std::move(f);
  ++subscribes_;
  return head_epoch_;
}

void LogShipper::Activate(uint64_t token) {
  {
    MutexLock lock(ship_mu_);
    auto it = followers_.find(token);
    if (it == followers_.end()) return;
    it->second.active = true;
  }
  ship_cv_.NotifyAll();  // the unparked cursor may have records to ship
}

void LogShipper::Ack(uint64_t token, uint64_t applied_epoch) {
  MutexLock lock(ship_mu_);
  ++acks_received_;
  auto it = followers_.find(token);
  if (it == followers_.end()) return;
  Follower& f = it->second;
  f.acked_epoch = std::max(f.acked_epoch, applied_epoch);
  if (f.inflight > 0) {
    if (--f.inflight == options_.window - 1) ship_cv_.NotifyAll();
  }
}

void LogShipper::Unsubscribe(uint64_t token) {
  MutexLock lock(ship_mu_);
  followers_.erase(token);
}

ShipperStats LogShipper::Snapshot() const {
  MutexLock lock(ship_mu_);
  ShipperStats s;
  s.records_appended = records_appended_;
  s.records_shipped = records_shipped_;
  s.acks_received = acks_received_;
  s.records_evicted = records_evicted_;
  s.subscribes = subscribes_;
  s.head_epoch = head_epoch_;
  s.floor_epoch = floor_epoch_;
  s.followers = followers_.size();
  s.retained = records_.size();
  if (!followers_.empty()) {
    uint64_t min_acked = ~uint64_t{0};
    for (const auto& [token, f] : followers_) {
      min_acked = std::min(min_acked, f.acked_epoch);
    }
    s.min_acked_epoch = min_acked;
  }
  return s;
}

bool LogShipper::ShippableLocked() const {
  const size_t end_index = base_index_ + records_.size();
  for (const auto& [token, f] : followers_) {
    if (f.active && f.next_index < end_index && f.inflight < options_.window) {
      return true;
    }
  }
  return false;
}

void LogShipper::ShipLoop() {
  // Frames staged under the lock, sent outside it: the send callbacks
  // take connection write locks, which must stay leaves of ship_mu_.
  std::vector<std::pair<SendFn, std::string>> outbox;
  for (;;) {
    outbox.clear();
    {
      MutexLock lock(ship_mu_);
      while (!stop_ && pending_.empty() && !ShippableLocked()) {
        ship_cv_.Wait(ship_mu_);
      }
      if (stop_) return;

      // Serialize newly committed batches into the ring.
      while (!pending_.empty()) {
        Pending p = std::move(pending_.front());
        pending_.pop_front();
        LogRecord rec;
        rec.epoch = p.epoch;
        rec.batch = std::move(p.batch);
        records_.push_back(Record{p.epoch, EncodeLogRecord(rec)});
        head_epoch_ = p.epoch;
        ++records_appended_;
      }

      // Enforce the retention cap. A follower whose cursor falls off
      // the evicted tail can no longer be caught up incrementally; drop
      // its subscription so it resubscribes (and learns it must resync).
      if (options_.retain_records > 0) {
        while (records_.size() > options_.retain_records) {
          floor_epoch_ = records_.front().epoch;
          records_.pop_front();
          ++base_index_;
          ++records_evicted_;
        }
        for (auto it = followers_.begin(); it != followers_.end();) {
          if (it->second.next_index < base_index_) {
            it = followers_.erase(it);
          } else {
            ++it;
          }
        }
      }

      // Stage frames for every follower with window room. Frames are
      // staged in cursor order per follower, and the single shipper
      // thread sends them in staging order, so each follower observes
      // records in log order.
      for (auto& [token, f] : followers_) {
        if (!f.active) continue;
        while (f.next_index < base_index_ + records_.size() &&
               f.inflight < options_.window) {
          const Record& rec = records_[f.next_index - base_index_];
          outbox.emplace_back(
              f.send,
              net::BuildFrame(net::Opcode::kLogRecord, /*flags=*/0,
                              /*request_id=*/0,
                              EncodeLogRecordFrame(head_epoch_, rec.encoded),
                              /*version=*/3));
          ++f.next_index;
          ++f.inflight;
          ++records_shipped_;
        }
      }
    }
    for (auto& [send, frame] : outbox) {
      send(std::move(frame));
    }
  }
}

}  // namespace repl
}  // namespace zdb
