// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Replication log records: the framing of one committed batch as it
// travels from a leader's log shipper to a follower's applier, plus the
// payload codecs of the three replication opcodes (net/wire.h v3).
//
// Record layout (little-endian, via the net/wire payload primitives):
//
//   u64  epoch        leader publish epoch the batch committed at
//   u32  op_count
//   ops  kind u8 = 0: insert — 4 doubles (MBR), u32 payload, u32 oid
//        kind u8 = 1: erase  — u32 oid
//   u32  checksum     FNV-1a over every preceding byte
//
// Inserts carry the leader-assigned oid (replayed as a preassigned
// insert), which is what keeps follower object ids byte-identical to
// the leader's. The checksum is defence in depth: TCP already checks
// transport corruption, but a shipper/applier bookkeeping bug that
// misaligns the stream fails loudly here instead of replaying garbage.
//
// Frame payloads:
//   SUBSCRIBE  request: u64 last applied epoch
//              reply body: u64 leader head epoch at subscribe time
//   LOG_RECORD push: u64 leader head epoch at send time + one record
//              (the piggybacked head epoch is how a connected follower
//              tracks its lag without a separate heartbeat — the leader
//              epoch only advances on commits, and every commit ships)
//   LOG_ACK    fire-and-forget: u64 applied epoch

#ifndef ZDB_REPL_RECORD_H_
#define ZDB_REPL_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/spatial_index.h"

namespace zdb {
namespace repl {

/// One committed batch, epoch-stamped. Insert ops carry the assigned
/// oid in WriteOp::preassigned.
struct LogRecord {
  uint64_t epoch = 0;
  WriteBatch batch;
};

std::string EncodeLogRecord(const LogRecord& record);
/// Strict bounds-checked decode; verifies the checksum. False on any
/// truncation, trailing bytes, unknown op kind or checksum mismatch.
[[nodiscard]] bool DecodeLogRecord(std::string_view payload,
                                   LogRecord* record);

// ------------------------------------------------- opcode payload codecs

std::string EncodeSubscribeRequest(uint64_t last_applied_epoch);
[[nodiscard]] bool DecodeSubscribeRequest(std::string_view payload,
                                          uint64_t* last_applied_epoch);

/// SUBSCRIBE success reply body (after the wire status byte).
std::string EncodeSubscribeReply(uint64_t leader_epoch);
[[nodiscard]] bool DecodeSubscribeReplyBody(std::string_view body,
                                            uint64_t* leader_epoch);

std::string EncodeLogRecordFrame(uint64_t leader_epoch,
                                 std::string_view encoded_record);
[[nodiscard]] bool DecodeLogRecordFrame(std::string_view payload,
                                        uint64_t* leader_epoch,
                                        LogRecord* record);

std::string EncodeLogAck(uint64_t applied_epoch);
[[nodiscard]] bool DecodeLogAck(std::string_view payload,
                                uint64_t* applied_epoch);

}  // namespace repl
}  // namespace zdb

#endif  // ZDB_REPL_RECORD_H_
