// Copyright (c) zdb authors. Licensed under the MIT license.
//
// LogShipper: the leader side of replication. It is the DB's
// CommitSink — every committed batch is enqueued (a cheap copy on the
// committing thread) and a dedicated shipper thread serializes it into
// a log record, appends it to the retained tail ring, and pushes
// LOG_RECORD frames to every subscribed follower whose in-flight
// window has room.
//
// Cursors: each follower is a (token -> Follower) entry holding its
// send callback, its absolute log-index cursor, its last acked epoch
// and its unacked in-flight count. Everything is GUARDED_BY(ship_mu_);
// send callbacks are invoked *outside* the lock (they append to a
// connection write buffer under its own mutex), in cursor order, from
// the single shipper thread — so per-follower record order is the log
// order by construction.
//
// Retention: the ring keeps at most `retain_records` encoded records
// (0 = unlimited). `floor_epoch_` is the epoch below which history is
// gone — initially the leader's publish epoch when the sink attached
// (batches committed before that never produced records), advanced as
// the ring evicts. A follower subscribing with last_applied below the
// floor gets a typed NotFound ("log truncated"): it must resync from a
// fresh copy of the leader, it cannot be caught up incrementally.
//
// Lock order: ship_mu_ is acquired after the DB's replication mutex
// (OnCommit runs under it) and before nothing — the send callbacks
// that take connection locks run outside ship_mu_. The negative-compile
// suite (tests/static_analysis/repl_cursor_unlocked.cc) pins the
// cursor-map discipline.

#ifndef ZDB_REPL_SHIP_H_
#define ZDB_REPL_SHIP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/commit_sink.h"

namespace zdb {
namespace repl {

struct ShipperOptions {
  /// Encoded records retained in the tail ring; 0 = unlimited. A
  /// follower whose cursor falls off the evicted tail is dropped and
  /// must resubscribe (and may then need a resync).
  size_t retain_records = 0;
  /// Max unacked LOG_RECORD frames in flight per follower — flow
  /// control so a stalled follower cannot balloon its connection's
  /// write buffer without bound.
  size_t window = 64;
};

/// Counters surfaced through the server's STATS "replication" object.
struct ShipperStats {
  uint64_t records_appended = 0;  ///< committed batches logged
  uint64_t records_shipped = 0;   ///< LOG_RECORD frames pushed
  uint64_t acks_received = 0;     ///< LOG_ACK frames consumed
  uint64_t records_evicted = 0;   ///< ring evictions (retention cap)
  uint64_t subscribes = 0;        ///< accepted SUBSCRIBE handshakes
  uint64_t head_epoch = 0;        ///< newest record epoch (log head)
  uint64_t floor_epoch = 0;       ///< history below this is gone
  uint64_t min_acked_epoch = 0;   ///< slowest follower's ack (0 if none)
  size_t followers = 0;           ///< live subscriptions
  size_t retained = 0;            ///< records currently in the ring
};

class LogShipper : public CommitSink {
 public:
  /// Pushes one fully framed LOG_RECORD (header + payload) at a
  /// follower connection. Must be cheap and non-blocking (buffered
  /// write); invoked from the shipper thread only.
  using SendFn = std::function<void(std::string frame)>;

  /// `attach_epoch` is the DB's publish epoch at sink attach — the
  /// initial log floor and head.
  LogShipper(uint64_t attach_epoch, ShipperOptions options);
  ~LogShipper() override;

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  void Start();
  /// Stops and joins the shipper thread; idempotent. Detach the sink
  /// from the DB before calling (no OnCommit may arrive afterwards).
  void Stop();

  // CommitSink: enqueue the batch for the shipper thread.
  void OnCommit(uint64_t epoch, const WriteBatch& resolved) override;

  /// Registers a follower whose last applied epoch is `last_applied`.
  /// Returns the current head epoch, or NotFound when the requested
  /// resume point was truncated / never logged (resync required), or
  /// InvalidArgument when the follower claims to be ahead of the log.
  /// `token` identifies the subscription for Ack/Unsubscribe (the
  /// server uses the connection identity). The cursor starts *parked*:
  /// nothing ships until Activate(token) — the caller buffers its
  /// subscribe reply in between, which is what guarantees the reply
  /// precedes the first pushed record on the wire.
  [[nodiscard]] Result<uint64_t> Subscribe(uint64_t token,
                                           uint64_t last_applied,
                                           SendFn send);

  /// Unparks a subscribed cursor; shipping to it begins. No-op for an
  /// unknown token (the connection may have closed in between).
  void Activate(uint64_t token);

  /// Consumes one LOG_ACK: opens the follower's in-flight window by one
  /// and advances its acked-epoch watermark. Unknown tokens are ignored
  /// (the follower may have been dropped by retention).
  void Ack(uint64_t token, uint64_t applied_epoch);

  /// Drops a subscription (connection closed). Idempotent.
  void Unsubscribe(uint64_t token);

  ShipperStats Snapshot() const;

 private:
  struct Pending {
    uint64_t epoch;
    WriteBatch batch;
  };
  struct Record {
    uint64_t epoch;
    std::string encoded;  ///< EncodeLogRecord output
  };
  struct Follower {
    SendFn send;
    size_t next_index;      ///< absolute log index of the next record
    uint64_t acked_epoch;   ///< last epoch the follower acked
    size_t inflight = 0;    ///< shipped, not yet acked
    bool active = false;    ///< parked until Activate (reply ordering)
  };

  void ShipLoop();

  /// True when some follower has unshipped records and window room.
  bool ShippableLocked() const REQUIRES(ship_mu_);

  const ShipperOptions options_;

  mutable Mutex ship_mu_;
  CondVar ship_cv_;  ///< shipper thread waits for commits/acks/stop
  /// Committed batches awaiting serialization (OnCommit -> ShipLoop).
  std::deque<Pending> pending_ GUARDED_BY(ship_mu_);
  /// The retained tail ring; records_[i] has absolute index
  /// base_index_ + i, epochs strictly increasing.
  std::deque<Record> records_ GUARDED_BY(ship_mu_);
  size_t base_index_ GUARDED_BY(ship_mu_) = 0;
  uint64_t head_epoch_ GUARDED_BY(ship_mu_);
  uint64_t floor_epoch_ GUARDED_BY(ship_mu_);
  /// Per-follower cursors, keyed by the server's connection token.
  std::unordered_map<uint64_t, Follower> followers_ GUARDED_BY(ship_mu_);
  bool stop_ GUARDED_BY(ship_mu_) = false;

  // Counters (under ship_mu_: every touch point already holds it).
  uint64_t records_appended_ GUARDED_BY(ship_mu_) = 0;
  uint64_t records_shipped_ GUARDED_BY(ship_mu_) = 0;
  uint64_t acks_received_ GUARDED_BY(ship_mu_) = 0;
  uint64_t records_evicted_ GUARDED_BY(ship_mu_) = 0;
  uint64_t subscribes_ GUARDED_BY(ship_mu_) = 0;

  /// The shipper thread. Deliberately unannotated: callers must
  /// serialize Start/Stop with each other (spawn and join cannot happen
  /// under a mutex), which is the same external contract the server's
  /// lifecycle already provides.
  std::thread thread_;
  bool started_ GUARDED_BY(ship_mu_) = false;  ///< Start/Stop bookkeeping
};

}  // namespace repl
}  // namespace zdb

#endif  // ZDB_REPL_SHIP_H_
