// Copyright (c) zdb authors. Licensed under the MIT license.

#include "repl/record.h"

#include <cstring>

#include "common/coding.h"
#include "net/wire.h"

namespace zdb {
namespace repl {

namespace {

void PutU32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

void PutU64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(dst, bits);
}

/// FNV-1a over the record body — cheap, order-sensitive, and enough to
/// catch a misaligned or bit-flipped replay before it mutates state.
uint32_t Fnv1a(std::string_view bytes) {
  uint32_t h = 0x811C9DC5u;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x01000193u;
  }
  return h;
}

}  // namespace

std::string EncodeLogRecord(const LogRecord& record) {
  std::string out;
  out.reserve(16 + 41 * record.batch.ops.size());
  PutU64(&out, record.epoch);
  PutU32(&out, static_cast<uint32_t>(record.batch.ops.size()));
  for (const WriteOp& op : record.batch.ops) {
    if (op.kind == WriteOp::Kind::kInsert) {
      out.push_back(0);
      PutDouble(&out, op.mbr.xlo);
      PutDouble(&out, op.mbr.ylo);
      PutDouble(&out, op.mbr.xhi);
      PutDouble(&out, op.mbr.yhi);
      PutU32(&out, op.payload);
      PutU32(&out, op.preassigned);
    } else {
      out.push_back(1);
      PutU32(&out, op.oid);
    }
  }
  PutU32(&out, Fnv1a(out));
  return out;
}

bool DecodeLogRecord(std::string_view payload, LogRecord* record) {
  if (payload.size() < 16) return false;  // epoch + count + checksum
  const std::string_view body = payload.substr(0, payload.size() - 4);
  const uint32_t stored = DecodeFixed32(payload.data() + payload.size() - 4);
  if (stored != Fnv1a(body)) return false;

  net::PayloadReader r(body);
  uint32_t count;
  if (!r.GetU64(&record->epoch) || !r.GetU32(&count)) return false;
  // Smallest op is 5 bytes (kind + oid): a hostile count cannot drive
  // allocation past the bytes actually present.
  if (count > r.remaining() / 5) return false;
  record->batch.ops.clear();
  record->batch.ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t kind;
    if (!r.GetU8(&kind)) return false;
    WriteOp op;
    if (kind == 0) {
      op.kind = WriteOp::Kind::kInsert;
      if (!r.GetDouble(&op.mbr.xlo) || !r.GetDouble(&op.mbr.ylo) ||
          !r.GetDouble(&op.mbr.xhi) || !r.GetDouble(&op.mbr.yhi) ||
          !r.GetU32(&op.payload) || !r.GetU32(&op.preassigned)) {
        return false;
      }
    } else if (kind == 1) {
      op.kind = WriteOp::Kind::kErase;
      if (!r.GetU32(&op.oid)) return false;
    } else {
      return false;
    }
    record->batch.ops.push_back(op);
  }
  return r.AtEnd();
}

// --------------------------------------------------- opcode payload codecs

std::string EncodeSubscribeRequest(uint64_t last_applied_epoch) {
  std::string out;
  PutU64(&out, last_applied_epoch);
  return out;
}

bool DecodeSubscribeRequest(std::string_view payload,
                            uint64_t* last_applied_epoch) {
  net::PayloadReader r(payload);
  return r.GetU64(last_applied_epoch) && r.AtEnd();
}

std::string EncodeSubscribeReply(uint64_t leader_epoch) {
  std::string out;
  out.push_back(static_cast<char>(net::WireError::kOk));
  PutU64(&out, leader_epoch);
  return out;
}

bool DecodeSubscribeReplyBody(std::string_view body, uint64_t* leader_epoch) {
  net::PayloadReader r(body);
  return r.GetU64(leader_epoch) && r.AtEnd();
}

std::string EncodeLogRecordFrame(uint64_t leader_epoch,
                                 std::string_view encoded_record) {
  std::string out;
  out.reserve(8 + encoded_record.size());
  PutU64(&out, leader_epoch);
  out.append(encoded_record.data(), encoded_record.size());
  return out;
}

bool DecodeLogRecordFrame(std::string_view payload, uint64_t* leader_epoch,
                          LogRecord* record) {
  net::PayloadReader r(payload);
  if (!r.GetU64(leader_epoch)) return false;
  return DecodeLogRecord(payload.substr(8), record);
}

std::string EncodeLogAck(uint64_t applied_epoch) {
  std::string out;
  PutU64(&out, applied_epoch);
  return out;
}

bool DecodeLogAck(std::string_view payload, uint64_t* applied_epoch) {
  net::PayloadReader r(payload);
  return r.GetU64(applied_epoch) && r.AtEnd();
}

}  // namespace repl
}  // namespace zdb
