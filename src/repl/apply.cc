// Copyright (c) zdb authors. Licensed under the MIT license.

#include "repl/apply.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/wire.h"
#include "repl/record.h"
#include "zdb/db.h"

namespace zdb {
namespace repl {

bool WithinStaleness(uint64_t leader_epoch, uint64_t applied_epoch,
                     bool connected, uint64_t max_lag) {
  if (max_lag == net::kNoStalenessBound) return true;
  // Disconnected means the lag is unknowable — the leader may be
  // arbitrarily far ahead — so a bounded query must not be served.
  if (!connected) return false;
  // applied > leader can transiently happen between the two atomic
  // loads; that is lag zero, not underflow.
  const uint64_t lag =
      leader_epoch > applied_epoch ? leader_epoch - applied_epoch : 0;
  return lag <= max_lag;
}

Applier::Applier(DB* db, ApplierOptions options)
    : db_(db), options_(std::move(options)) {
  applied_epoch_.store(options_.initial_applied_epoch,
                       std::memory_order_release);
}

Applier::~Applier() { Stop(); }

Status Applier::Start() {
  {
    MutexLock lock(mu_);
    if (started_) return Status::OK();
  }
  // Fail fast on a bad URI instead of burying it in reconnect retries.
  ZDB_RETURN_IF_ERROR(net::ParseEndpoint(options_.leader_endpoint).status());
  {
    MutexLock lock(mu_);
    started_ = true;
  }
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void Applier::Stop() {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    stop_requested_ = true;
    if (sock_.valid()) sock_.ShutdownBoth();  // unblock a blocked read
  }
  stop_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  MutexLock lock(mu_);
  started_ = false;
}

ApplierStats Applier::Snapshot() const {
  ApplierStats s;
  s.records_applied = records_applied_.load(std::memory_order_relaxed);
  s.duplicates_skipped = duplicates_skipped_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.subscribe_rejects = subscribe_rejects_.load(std::memory_order_relaxed);
  s.stream_errors = stream_errors_.load(std::memory_order_relaxed);
  s.applied_epoch = applied_epoch();
  s.leader_epoch = leader_epoch();
  s.connected = connected();
  return s;
}

bool Applier::SleepBackoff(uint32_t ms) {
  MutexLock lock(mu_);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!stop_requested_) {
    if (!stop_cv_.WaitUntil(mu_, deadline)) break;  // deadline passed
  }
  return !stop_requested_;
}

void Applier::Run() {
  // Start() validated the URI; re-parse is infallible here.
  const net::Endpoint endpoint =
      net::ParseEndpoint(options_.leader_endpoint).value();
  uint32_t backoff_ms = options_.reconnect_min_ms;
  bool first_attempt = true;
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_requested_) return;
    }
    if (!first_attempt) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      if (!SleepBackoff(backoff_ms)) return;
      backoff_ms = std::min(backoff_ms * 2, options_.reconnect_max_ms);
    }
    first_attempt = false;

    auto conn = net::Connect(endpoint);
    if (!conn.ok()) continue;
    {
      MutexLock lock(mu_);
      if (stop_requested_) return;
      sock_ = std::move(conn).value();
    }

    RunSession();

    connected_.store(false, std::memory_order_release);
    {
      MutexLock lock(mu_);
      sock_.Close();
      if (stop_requested_) return;
    }
  }
}

void Applier::RunSession() {
  using net::Frame;
  using net::FrameAssembler;
  using net::FrameHeader;
  using net::Opcode;
  using net::WireError;

  // Handshake: SUBSCRIBE from our applied epoch.
  const uint64_t subscribe_id = 1;
  const std::string request = net::BuildFrame(
      Opcode::kSubscribe, /*flags=*/0, subscribe_id,
      EncodeSubscribeRequest(applied_epoch()), /*version=*/3);
  if (!net::WriteFully(sock_, request.data(), request.size()).ok()) return;

  FrameAssembler assembler;
  char buf[64 * 1024];
  bool subscribed = false;
  for (;;) {
    Frame frame;
    WireError err;
    FrameHeader err_header;
    const auto next = assembler.Poll(&frame, &err, &err_header);
    if (next == FrameAssembler::Next::kError) {
      stream_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (next == FrameAssembler::Next::kNeedMore) {
      auto n = net::ReadSome(sock_, buf, sizeof(buf));
      if (!n.ok() || n.value() == 0) return;  // dropped / shut down
      assembler.Feed(buf, n.value());
      continue;
    }

    if (!subscribed) {
      // First frame must be the subscribe reply.
      if ((frame.header.flags & net::kFlagReply) == 0 ||
          frame.header.request_id != subscribe_id ||
          frame.header.opcode != static_cast<uint8_t>(Opcode::kSubscribe)) {
        stream_errors_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::string_view body;
      std::string message;
      const WireError status =
          net::ParseReplyStatus(frame.payload, &body, &message);
      if (status != WireError::kOk) {
        // Typed refusal (NOT_LEADER, log truncated, ...). Nothing the
        // applier can do but keep retrying at backoff; the operator
        // sees subscribe_rejects climbing in STATS.
        subscribe_rejects_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      uint64_t head = 0;
      if (!DecodeSubscribeReplyBody(body, &head)) {
        stream_errors_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      leader_epoch_.store(head, std::memory_order_release);
      connected_.store(true, std::memory_order_release);
      subscribed = true;
      continue;
    }

    // Streaming: leader-initiated LOG_RECORD pushes only.
    if (frame.header.opcode != static_cast<uint8_t>(Opcode::kLogRecord) ||
        (frame.header.flags & net::kFlagReply) != 0) {
      stream_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    uint64_t head = 0;
    LogRecord record;
    if (!DecodeLogRecordFrame(frame.payload, &head, &record)) {
      stream_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    leader_epoch_.store(head, std::memory_order_release);

    if (record.epoch <= applied_epoch()) {
      // Reconnect overlap: the leader resent a record we already hold.
      duplicates_skipped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (!db_->ApplyReplicated(record.batch).ok()) {
        // Replay must never fail on a healthy follower; if it does the
        // replica may have diverged, so drop the link loudly rather
        // than silently continuing past a hole.
        stream_errors_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Counter before watermark: the release store below orders the
      // relaxed increment, so anyone who acquires applied_epoch() >= e
      // also sees the records_applied count that includes record e.
      records_applied_.fetch_add(1, std::memory_order_relaxed);
      applied_epoch_.store(record.epoch, std::memory_order_release);
    }

    // Ack every received record (duplicates too — the ack is also the
    // leader's in-flight window release).
    const std::string ack =
        net::BuildFrame(Opcode::kLogAck, /*flags=*/0, /*request_id=*/0,
                        EncodeLogAck(applied_epoch()), /*version=*/3);
    if (!net::WriteFully(sock_, ack.data(), ack.size()).ok()) return;
  }
}

}  // namespace repl
}  // namespace zdb
