// Copyright (c) zdb authors. Licensed under the MIT license.

#include "zdb/db.h"

#include <cstring>

#include "storage/buffer_pool.h"
#include "storage/file.h"
#include "storage/pager.h"

namespace zdb {

namespace {

/// First page allocated after formatting: the DB's one-page catalog,
/// holding the spatial index's master page id at offset 0. Reserving it
/// up front pins it at a well-known id so Open never needs a directory.
constexpr PageId kCatalogPage = 1;

bool IsMemoryPath(const std::string& path) {
  return path.empty() || path == ":memory:";
}

}  // namespace

struct DB::Impl {
  std::unique_ptr<Pager> pager;
  std::unique_ptr<BufferPool> pool;
};

DB::~DB() {
  // The index owns the group-commit thread; destroy it (draining
  // durability) before the pool/pager it writes through.
  index_.reset();
  impl_.reset();
}

Result<std::unique_ptr<DB>> DB::Open(const std::string& path,
                                     const DBOptions& options) {
  if (options.cache_pages == 0) {
    return Status::InvalidArgument("cache_pages must be >= 1");
  }
  std::unique_ptr<DB> db(new DB());
  db->impl_ = std::make_unique<Impl>();

  std::unique_ptr<File> file, journal;
  bool fresh = true;
  if (IsMemoryPath(path)) {
    file = std::make_unique<MemFile>();
    if (options.memory_journal) journal = std::make_unique<MemFile>();
  } else {
    ZDB_ASSIGN_OR_RETURN(file, PosixFile::Open(path));
    ZDB_ASSIGN_OR_RETURN(journal, PosixFile::Open(path + "-journal"));
    fresh = file->Size() == 0;
  }
  db->journaled_ = journal != nullptr;

  // Pager::Open with a journal runs crash recovery: a batch interrupted
  // before its commit — including a group of published-but-not-durable
  // write batches — is rolled back here, as a unit.
  if (journal != nullptr) {
    ZDB_ASSIGN_OR_RETURN(
        db->impl_->pager,
        Pager::Open(std::move(file), std::move(journal), options.page_size));
  } else {
    ZDB_ASSIGN_OR_RETURN(db->impl_->pager,
                         Pager::Open(std::move(file), options.page_size));
  }
  Pager* pager = db->impl_->pager.get();
  db->impl_->pool =
      std::make_unique<BufferPool>(pager, options.cache_pages);
  BufferPool* pool = db->impl_->pool.get();

  if (fresh) {
    // Create: reserve the catalog page, build an empty index, and make
    // the formatted state durable as one atomic batch (journaled DBs).
    const bool batch = db->journaled_;
    if (batch) ZDB_RETURN_IF_ERROR(pager->BeginBatch());
    {
      PageRef catalog;
      ZDB_ASSIGN_OR_RETURN(catalog, pool->New());
      if (catalog.id() != kCatalogPage) {
        return Status::Corruption("catalog page landed at page " +
                                  std::to_string(catalog.id()));
      }
      std::memset(catalog.mutable_data(), 0, sizeof(PageId));
    }
    ZDB_ASSIGN_OR_RETURN(db->index_,
                         SpatialIndex::Create(pool, options.index));
    PageId master;
    ZDB_ASSIGN_OR_RETURN(master, db->index_->Checkpoint());
    {
      PageRef catalog;
      ZDB_ASSIGN_OR_RETURN(catalog, pool->Fetch(kCatalogPage));
      std::memcpy(catalog.mutable_data(), &master, sizeof(master));
    }
    ZDB_RETURN_IF_ERROR(pool->FlushAll());
    ZDB_RETURN_IF_ERROR(batch ? pager->CommitBatch() : pager->Sync());
  } else {
    PageId master = kInvalidPageId;
    {
      PageRef catalog;
      ZDB_ASSIGN_OR_RETURN(catalog, pool->Fetch(kCatalogPage));
      std::memcpy(&master, catalog.data(), sizeof(master));
    }
    ZDB_ASSIGN_OR_RETURN(db->index_, SpatialIndex::Open(pool, master));
  }

  if (db->journaled_ && options.group_commit) {
    ZDB_RETURN_IF_ERROR(db->index_->StartGroupCommit());
  }
  if (options.snapshot_reads) {
    ZDB_RETURN_IF_ERROR(db->index_->EnableSnapshots());
  }
  return db;
}

// --------------------------------------------------------------- queries

Result<std::vector<ObjectId>> DB::Window(const Rect& window,
                                         QueryStats* stats) {
  return index_->WindowQuery(window, stats);
}

Result<std::vector<ObjectId>> DB::Point(const zdb::Point& p, QueryStats* stats) {
  return index_->PointQuery(p, stats);
}

Result<std::vector<ObjectId>> DB::Containment(const Rect& window,
                                              QueryStats* stats) {
  return index_->ContainmentQuery(window, stats);
}

Result<std::vector<std::pair<ObjectId, double>>> DB::Nearest(
    const zdb::Point& p, size_t k, QueryStats* stats) {
  return index_->NearestNeighbors(p, k, stats);
}

// --------------------------------------------------------------- updates

Result<ObjectId> DB::Insert(const Rect& mbr, uint32_t payload) {
  return index_->Insert(mbr, payload);
}

Result<ObjectId> DB::InsertPolygon(const Polygon& poly) {
  return index_->InsertPolygon(poly);
}

Status DB::Erase(ObjectId oid) { return index_->Erase(oid); }

Status DB::BulkLoad(const std::vector<Rect>& data, double fill) {
  return index_->BulkLoad(data, fill);
}

Result<std::vector<ObjectId>> DB::Apply(const WriteBatch& batch,
                                        Durability durability) {
  return index_->ApplyBatch(batch, durability);
}

// ------------------------------------------------------------ durability

Status DB::Checkpoint() {
  if (index_->group_commit_active()) {
    // Everything written is already published; durability is the
    // pipeline's job — just wait it out.
    return index_->WaitDurable(index_->write_epoch());
  }
  Pager* pager = impl_->pager.get();
  if (journaled_ && !pager->in_batch()) {
    ZDB_RETURN_IF_ERROR(pager->BeginBatch());
    Status st = index_->Checkpoint().status();
    if (st.ok()) st = impl_->pool->FlushAll();
    if (st.ok()) st = pager->CommitBatch();
    if (!st.ok() && pager->in_batch()) {
      Status undo = pager->AbortBatch();
      if (!undo.ok()) {
        return Status::Corruption("checkpoint failed (" + st.ToString() +
                                  ") and rollback failed too: " +
                                  undo.ToString());
      }
    }
    return st;
  }
  ZDB_RETURN_IF_ERROR(index_->Checkpoint().status());
  ZDB_RETURN_IF_ERROR(impl_->pool->FlushAll());
  return pager->Sync();
}

Status DB::WaitDurable(uint64_t epoch, uint64_t timeout_ms) {
  if (!index_->group_commit_active()) {
    return Status::InvalidArgument("group-commit pipeline not running");
  }
  return index_->WaitDurable(epoch, timeout_ms);
}

// -------------------------------------------------------------- plumbing

DBStats DB::Stats() const {
  const Pager* pager = impl_->pager.get();
  DBStats s;
  s.objects = index_->object_count();
  s.index_entries = index_->build_stats().index_entries;
  s.redundancy = index_->build_stats().redundancy();
  s.write_epoch = index_->write_epoch();
  s.durable_epoch = index_->durable_epoch();
  s.journal_commits = pager->commit_count();
  s.pages = pager->page_count();
  s.page_size = pager->page_size();
  s.group_commit = index_->group_commit_active();
  s.snapshot_reads = index_->snapshots_enabled();
  if (s.snapshot_reads) {
    const EpochStats es = index_->epoch_stats();
    s.pinned_epochs = es.pinned;
    s.pins_taken = es.pins_taken;
    const PageVersionStats vs = index_->version_stats();
    s.page_versions = vs.live;
    s.version_bytes = vs.bytes;
    s.versions_saved = vs.saved;
    s.versions_reclaimed = vs.reclaimed;
  }
  return s;
}

const IoStats& DB::io_stats() const { return impl_->pager->io_stats(); }

void DB::set_simulated_read_latency_us(uint32_t us) {
  impl_->pager->set_simulated_read_latency_us(us);
}

Status DB::ClearCache() { return impl_->pool->Clear(); }

std::unique_ptr<QueryExecutor> DB::NewExecutor(size_t threads) {
  return std::make_unique<QueryExecutor>(index_.get(), threads);
}

}  // namespace zdb
