// Copyright (c) zdb authors. Licensed under the MIT license.

#include "zdb/db.h"

#include <algorithm>
#include <atomic>

#include "shard/manifest.h"
#include "storage/file.h"

namespace zdb {

namespace {

bool IsMemoryPath(const std::string& path) {
  return path.empty() || path == ":memory:";
}

}  // namespace

struct DB::Impl {
  std::unique_ptr<shard::ShardRouter> router;
  bool sharded = false;  ///< N > 1: route writes/queries through router

  /// Replication hook. repl_mu_ serializes {publish, read epoch, emit}
  /// so the sink observes batches in strictly increasing epoch order;
  /// durability waits happen outside it. has_sink is the lock-free fast
  /// path — the unhooked write path is byte-for-byte the old one.
  Mutex repl_mu_;
  CommitSink* sink GUARDED_BY(repl_mu_) = nullptr;
  std::atomic<bool> has_sink{false};
};

DB::~DB() {
  // The router owns the engines; each engine stops its group-commit
  // thread before its pool/pager goes.
  impl_.reset();
}

Status DBOptions::Validate() const {
  if (cache_pages == 0) {
    return Status::InvalidArgument("cache_pages must be >= 1");
  }
  if (shards < 1 || shards > shard::kMaxShards) {
    return Status::InvalidArgument(
        "shards must be in [1, " + std::to_string(shard::kMaxShards) + "]");
  }
  return Status::OK();
}

Result<std::unique_ptr<DB>> DB::Open(const std::string& path,
                                     const DBOptions& options) {
  ZDB_RETURN_IF_ERROR(options.Validate());

  shard::ShardEngineOptions eopt;
  eopt.index = options.index;
  eopt.page_size = options.page_size;
  eopt.cache_pages = options.cache_pages;
  eopt.memory_journal = options.memory_journal;
  eopt.group_commit = options.group_commit;
  eopt.snapshot_reads = options.snapshot_reads;

  // Resolve the shard layout. The stored layout always wins on reopen:
  // a file starting with the shard manifest magic reopens sharded with
  // the stored count, any other non-empty file reopens as a classic
  // single-shard DB, and only a fresh path honours options.shards.
  uint32_t n = options.shards;
  std::vector<std::string> shard_paths;
  if (IsMemoryPath(path)) {
    shard_paths.assign(n, path);
  } else {
    std::unique_ptr<File> main_file;
    ZDB_ASSIGN_OR_RETURN(main_file, PosixFile::Open(path));
    const bool fresh = main_file->Size() == 0;
    if (!fresh && shard::IsManifest(main_file.get())) {
      shard::ShardManifest manifest;
      ZDB_ASSIGN_OR_RETURN(manifest, shard::ReadManifest(main_file.get()));
      n = manifest.shard_count;
    } else if (!fresh) {
      n = 1;
    } else if (n > 1) {
      ZDB_RETURN_IF_ERROR(
          shard::WriteManifest(main_file.get(), shard::ShardManifest{n}));
    }
    main_file.reset();  // release the sniffing handle before the engines open
    if (n == 1) {
      shard_paths.push_back(path);
    } else {
      for (uint32_t s = 0; s < n; ++s) {
        shard_paths.push_back(shard::ShardFilePath(path, s));
      }
    }
  }

  std::vector<std::unique_ptr<shard::ShardEngine>> engines;
  engines.reserve(n);
  for (const std::string& p : shard_paths) {
    std::unique_ptr<shard::ShardEngine> engine;
    ZDB_ASSIGN_OR_RETURN(engine, shard::ShardEngine::Open(p, eopt));
    engines.push_back(std::move(engine));
  }

  std::unique_ptr<DB> db(new DB());
  db->impl_ = std::make_unique<Impl>();
  db->journaled_ = engines[0]->journaled();
  db->impl_->sharded = n > 1;

  // Routing comes from the engines' actual (possibly reopened) index
  // options, not the caller's, so a reopened DB routes exactly as it
  // did when created.
  const SpatialIndexOptions& iopt = engines[0]->index()->options();
  shard::ShardRouting routing(n, iopt.world, iopt.grid_bits);
  db->impl_->router = std::make_unique<shard::ShardRouter>(std::move(engines),
                                                           std::move(routing));
  if (db->impl_->sharded) {
    ZDB_RETURN_IF_ERROR(db->impl_->router->RecoverState());
  }
  return db;
}

// --------------------------------------------------------------- queries

Result<std::vector<ObjectId>> DB::Window(const Rect& window,
                                         QueryStats* stats) {
  if (impl_->sharded) return impl_->router->Window(window, stats);
  return index()->WindowQuery(window, stats);
}

Result<std::vector<ObjectId>> DB::Point(const zdb::Point& p, QueryStats* stats) {
  if (impl_->sharded) return impl_->router->Point(p, stats);
  return index()->PointQuery(p, stats);
}

Result<std::vector<ObjectId>> DB::Containment(const Rect& window,
                                              QueryStats* stats) {
  if (impl_->sharded) return impl_->router->Containment(window, stats);
  return index()->ContainmentQuery(window, stats);
}

Result<std::vector<std::pair<ObjectId, double>>> DB::Nearest(
    const zdb::Point& p, size_t k, QueryStats* stats) {
  if (impl_->sharded) return impl_->router->Nearest(p, k, stats);
  return index()->NearestNeighbors(p, k, stats);
}

// --------------------------------------------------------------- updates

Result<ObjectId> DB::Insert(const Rect& mbr, uint32_t payload) {
  if (impl_->has_sink.load(std::memory_order_acquire)) {
    // Route through Apply so the mutation reaches the commit sink as a
    // one-op batch (publish-time ack, like the direct path).
    WriteBatch batch;
    batch.Insert(mbr, payload);
    std::vector<ObjectId> ids;
    ZDB_ASSIGN_OR_RETURN(ids, Apply(batch, Durability::kPublished));
    return ids[0];
  }
  if (impl_->sharded) return impl_->router->Insert(mbr, payload);
  return index()->Insert(mbr, payload);
}

Result<ObjectId> DB::InsertPolygon(const Polygon& poly) {
  if (impl_->has_sink.load(std::memory_order_acquire)) {
    return Status::InvalidArgument(
        "InsertPolygon has no batch representation to replicate; "
        "not available while a commit sink is attached");
  }
  if (impl_->sharded) return impl_->router->InsertPolygon(poly);
  return index()->InsertPolygon(poly);
}

Status DB::Erase(ObjectId oid) {
  if (impl_->has_sink.load(std::memory_order_acquire)) {
    WriteBatch batch;
    batch.Erase(oid);
    return Apply(batch, Durability::kPublished).status();
  }
  if (impl_->sharded) return impl_->router->Erase(oid);
  return index()->Erase(oid);
}

Status DB::BulkLoad(const std::vector<Rect>& data, double fill) {
  if (impl_->has_sink.load(std::memory_order_acquire)) {
    return Status::InvalidArgument(
        "BulkLoad bypasses the batch commit path; "
        "not available while a commit sink is attached");
  }
  if (impl_->sharded) return impl_->router->BulkLoad(data, fill);
  return index()->BulkLoad(data, fill);
}

Result<std::vector<ObjectId>> DB::Apply(const WriteBatch& batch,
                                        Durability durability) {
  if (!impl_->has_sink.load(std::memory_order_acquire)) {
    if (impl_->sharded) return impl_->router->Apply(batch, durability);
    return index()->ApplyBatch(batch, durability);
  }

  // Sink attached: publish and emit under repl_mu_ so OnCommit sees
  // batches in strictly increasing epoch order, then satisfy kDurable
  // outside the lock (concurrent committers overlap their fsyncs).
  uint64_t publish_epoch = 0;
  Result<std::vector<ObjectId>> r = std::vector<ObjectId>{};
  {
    MutexLock lock(impl_->repl_mu_);
    if (impl_->sink == nullptr) {
      // Detached between the fast-path check and the lock.
      lock.Unlock();
      if (impl_->sharded) return impl_->router->Apply(batch, durability);
      return index()->ApplyBatch(batch, durability);
    }
    r = impl_->sharded
            ? impl_->router->Apply(batch, Durability::kPublished)
            : index()->ApplyBatch(batch, Durability::kPublished);
    if (!r.ok()) return r;
    if (!batch.empty()) {
      publish_epoch = write_epoch();
      WriteBatch resolved = batch;
      size_t next_inserted = 0;
      for (WriteOp& op : resolved.ops) {
        if (op.kind == WriteOp::Kind::kInsert) {
          op.preassigned = r.value()[next_inserted++];
        }
      }
      impl_->sink->OnCommit(publish_epoch, resolved);
    }
  }
  if (durability == Durability::kDurable && !batch.empty() &&
      index()->group_commit_active()) {
    ZDB_RETURN_IF_ERROR(WaitDurable(publish_epoch));
  }
  return r;
}

// ----------------------------------------------------------- replication

Status DB::SetCommitSink(CommitSink* sink) {
  MutexLock lock(impl_->repl_mu_);
  if (sink != nullptr && impl_->sink != nullptr && impl_->sink != sink) {
    return Status::InvalidArgument("a commit sink is already attached");
  }
  impl_->sink = sink;
  impl_->has_sink.store(sink != nullptr, std::memory_order_release);
  return Status::OK();
}

Result<std::vector<ObjectId>> DB::ApplyReplicated(const WriteBatch& batch) {
  for (const WriteOp& op : batch.ops) {
    if (op.kind == WriteOp::Kind::kInsert &&
        op.preassigned == kNoPreassignedOid) {
      return Status::InvalidArgument(
          "replicated insert lacks a leader-assigned oid");
    }
  }
  if (impl_->sharded) return impl_->router->ApplyReplicated(batch);
  return index()->ApplyBatch(batch, Durability::kPublished);
}

// ------------------------------------------------------------ durability

Status DB::Checkpoint() { return impl_->router->Checkpoint(); }

Status DB::WaitDurable(uint64_t epoch, uint64_t timeout_ms) {
  if (!index()->group_commit_active()) {
    return Status::InvalidArgument("group-commit pipeline not running");
  }
  if (impl_->sharded) return impl_->router->WaitDurable(epoch, timeout_ms);
  return index()->WaitDurable(epoch, timeout_ms);
}

// -------------------------------------------------------------- plumbing

DBStats DB::Stats() const {
  const shard::ShardRouter* router = impl_->router.get();
  DBStats s;
  s.shards = router->shards();
  s.objects = impl_->sharded ? router->object_count()
                             : router->index(0)->object_count();
  s.write_epoch = impl_->sharded ? router->write_epoch()
                                 : router->index(0)->write_epoch();
  s.durable_epoch = router->index(0)->durable_epoch();
  s.page_size = router->engine(0)->pager()->page_size();
  s.group_commit = router->index(0)->group_commit_active();
  s.snapshot_reads = router->index(0)->snapshots_enabled();
  for (uint32_t i = 0; i < router->shards(); ++i) {
    const SpatialIndex* index = router->index(i);
    const Pager* pager = router->engine(i)->pager();
    s.index_entries += index->build_stats().index_entries;
    s.journal_commits += pager->commit_count();
    s.pages += pager->page_count();
    s.durable_epoch = std::min(s.durable_epoch, index->durable_epoch());
    if (index->snapshots_enabled()) {
      const EpochStats es = index->epoch_stats();
      s.pinned_epochs += es.pinned;
      s.pins_taken += es.pins_taken;
      const PageVersionStats vs = index->version_stats();
      s.page_versions += vs.live;
      s.version_bytes += vs.bytes;
      s.versions_saved += vs.saved;
      s.versions_reclaimed += vs.reclaimed;
    }
  }
  s.redundancy =
      s.objects == 0 ? 0.0 : static_cast<double>(s.index_entries) / s.objects;
  return s;
}

std::vector<shard::ShardCounters> DB::ShardStats() const {
  std::vector<shard::ShardCounters> out;
  out.reserve(impl_->router->shards());
  for (uint32_t s = 0; s < impl_->router->shards(); ++s) {
    out.push_back(impl_->router->CountersOf(s));
  }
  return out;
}

bool DB::sharded() const { return impl_->sharded; }

uint32_t DB::shards() const { return impl_->router->shards(); }

uint64_t DB::write_epoch() const {
  return impl_->sharded ? impl_->router->write_epoch()
                        : impl_->router->index(0)->write_epoch();
}

uint64_t DB::object_count() const {
  return impl_->sharded ? impl_->router->object_count()
                        : impl_->router->index(0)->object_count();
}

const IndexBuildStats& DB::build_stats() const {
  return impl_->router->index(0)->build_stats();
}

const IoStats& DB::io_stats() const {
  return impl_->router->engine(0)->pager()->io_stats();
}

void DB::set_simulated_read_latency_us(uint32_t us) {
  for (uint32_t s = 0; s < impl_->router->shards(); ++s) {
    impl_->router->engine(s)->pager()->set_simulated_read_latency_us(us);
  }
}

Status DB::ClearCache() {
  for (uint32_t s = 0; s < impl_->router->shards(); ++s) {
    ZDB_RETURN_IF_ERROR(impl_->router->engine(s)->pool()->Clear());
  }
  return Status::OK();
}

std::unique_ptr<QueryExecutor> DB::NewExecutor(size_t threads) {
  if (impl_->sharded) {
    return std::make_unique<QueryExecutor>(impl_->router->indexes(),
                                           impl_->router->routing(), threads);
  }
  return std::make_unique<QueryExecutor>(index(), threads);
}

SpatialIndex* DB::index() { return impl_->router->index(0); }

shard::ShardRouter* DB::router() { return impl_->router.get(); }

}  // namespace zdb
