// Copyright (c) zdb authors. Licensed under the MIT license.
//
// zdb::DB — the single public facade over the engine. It owns the whole
// storage stack (file, rollback journal, pager, buffer pool, spatial
// index, group-commit pipeline) so applications, examples, benches and
// the server never assemble Pager/BufferPool/SpatialIndex by hand.
//
//   auto db = zdb::DB::Open("", {}).value();          // in-memory
//   auto db = zdb::DB::Open("/tmp/city.zdb").value(); // durable file
//
//   ObjectId id = db->Insert(Rect{.2, .2, .3, .25}).value();
//   auto hits = db->Window(Rect{.1, .1, .4, .4}).value();
//
//   WriteBatch batch;
//   batch.Insert(Rect{.5, .5, .6, .6});
//   batch.Erase(id);
//   auto ids = db->Apply(batch).value();              // durable on return
//   auto ids2 = db->Apply(batch2, Durability::kPublished);  // ack early
//
// Durability: a file-backed DB opens its rollback journal at
// `path + "-journal"` and runs the group-commit pipeline — mutations are
// published to readers immediately and made durable by a dedicated
// thread that coalesces batches into one fsync; Apply's Durability flag
// chooses whether the call waits for that fsync. Crash contract:
// published-but-not-durable batches roll back as a unit on the next
// Open, never partially. An in-memory DB has no journal by default
// (queries and batches behave as before); set
// DBOptions::memory_journal to get journaled crash-atomic batches and
// the group-commit pipeline on an in-memory file (tests, benches).
//
// Sharding: DBOptions::shards > 1 partitions the z-order keyspace by
// top-level Morton prefix into N independent shard engines (each its
// own file, pager, buffer pool, index, epoch domain and group-commit
// pipeline) behind this same facade — queries scatter to overlapping
// shards and gather + dedup by oid, writes split by routing prefix and
// fan out to the per-shard pipelines, and object ids stay byte-identical
// to a single-shard DB's. On disk the main path holds a small manifest
// and shard i lives at `path + ".shard<i>"`; a sharded file always
// reopens sharded (the stored layout wins, like stored index options).
// The default shards = 1 preserves today's one-file layout exactly.
// See DESIGN.md "Sharded partitions".
//
// Every fallible entry point returns Status/Result<T> (common/status.h).

#ifndef ZDB_ZDB_DB_H_
#define ZDB_ZDB_DB_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/commit_sink.h"
#include "core/spatial_index.h"
#include "exec/executor.h"
#include "shard/router.h"

namespace zdb {

/// Configuration of DB::Open. The defaults give a 4 KiB-page, 256-frame
/// cache with the paper's size-bound-4 decomposition.
struct DBOptions {
  /// Index configuration (decomposition policies, grid, ablations).
  /// Used when creating; a reopened DB restores its stored options.
  SpatialIndexOptions index;

  /// Page size of a newly created database file.
  uint32_t page_size = kDefaultPageSize;

  /// Buffer-pool capacity in frames (per shard engine).
  size_t cache_pages = 256;

  /// Give an in-memory DB a (memory-backed) rollback journal, enabling
  /// crash-atomic batches and the group-commit pipeline without a disk
  /// file. File-backed DBs always have a journal.
  bool memory_journal = false;

  /// Run the group-commit durability pipeline when the DB is journaled
  /// (see spatial_index.h). Disable to get the legacy synchronous
  /// commit-per-batch path.
  bool group_commit = true;

  /// Serve queries from epoch-pinned snapshots instead of the shared
  /// reader latch (see the "snapshot reads" section of spatial_index.h):
  /// each query pins the current committed epoch and traverses
  /// copy-on-write page versions latch-free, so long scans never stall a
  /// writer and a writer never stalls readers. Disable to get the legacy
  /// latched reader path.
  bool snapshot_reads = true;

  /// Number of z-prefix shard engines, 1..64. Used when creating; a
  /// reopened DB keeps its stored shard layout. 1 (the default) is the
  /// classic single-engine DB.
  uint32_t shards = 1;

  /// Typed rejection of every statically invalid knob combination
  /// (cache_pages == 0, shards outside [1, 64], ...). DB::Open calls
  /// this first, so invalid options yield this exact Status instead of
  /// a partially opened stack; callers building configuration surfaces
  /// (servers, tools) can validate without opening anything.
  [[nodiscard]] Status Validate() const;
};

/// Aggregate counters served by DB::Stats(). For a sharded DB the
/// storage counters (entries, pages, commits, versions) sum over the
/// shards, `objects` counts each object once (not per replica),
/// `write_epoch` is the router's published-batch counter and
/// `durable_epoch` the most conservative (minimum) per-shard durable
/// epoch. Per-shard breakdowns come from DB::ShardStats().
struct DBStats {
  uint64_t objects = 0;        ///< live objects
  uint64_t index_entries = 0;  ///< z-elements stored in the B+-tree(s)
  double redundancy = 0.0;     ///< entries per object
  uint64_t write_epoch = 0;    ///< published writer sections / batches
  uint64_t durable_epoch = 0;  ///< highest epoch fsynced (group mode)
  uint64_t journal_commits = 0;  ///< durable batch commits (coalesced)
  uint32_t pages = 0;          ///< pages allocated in the file(s)
  uint32_t page_size = 0;
  bool group_commit = false;   ///< pipeline currently running
  bool snapshot_reads = false;  ///< epoch-pinned latch-free queries on
  uint32_t shards = 1;          ///< shard engines behind the facade
  uint64_t pinned_epochs = 0;   ///< snapshot pins currently open
  uint64_t pins_taken = 0;      ///< snapshot pins ever taken
  uint64_t page_versions = 0;   ///< before-image page versions retained
  uint64_t version_bytes = 0;   ///< bytes held by those versions
  uint64_t versions_saved = 0;  ///< before-images ever saved
  uint64_t versions_reclaimed = 0;  ///< versions reclaimed by epoch GC
};

class DB {
 public:
  /// Opens (or creates) a database. An empty path or ":memory:" gives an
  /// in-memory DB; anything else is a file path whose rollback journal
  /// lives at `path + "-journal"` (crash recovery runs here). A file
  /// that already holds a database is reopened with its stored index
  /// options and shard layout; otherwise it is created with
  /// `options.index` / `options.shards`.
  [[nodiscard]] static Result<std::unique_ptr<DB>> Open(const std::string& path,
                                          const DBOptions& options = {});

  /// Stops the group-commit pipeline(s) (draining pending durability)
  /// and tears the stack down.
  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  // ------------------------------------------------------------- queries

  /// All live objects whose MBR intersects `window`.
  [[nodiscard]] Result<std::vector<ObjectId>> Window(const Rect& window,
                                       QueryStats* stats = nullptr);

  /// All live objects containing `p` (exact geometry).
  [[nodiscard]] Result<std::vector<ObjectId>> Point(const zdb::Point& p,
                                      QueryStats* stats = nullptr);

  /// All live objects fully inside `window`.
  [[nodiscard]] Result<std::vector<ObjectId>> Containment(const Rect& window,
                                            QueryStats* stats = nullptr);

  /// The k nearest objects to `p`, closest first.
  [[nodiscard]] Result<std::vector<std::pair<ObjectId, double>>> Nearest(
      const zdb::Point& p, size_t k, QueryStats* stats = nullptr);

  // ------------------------------------------------------------- updates

  /// Single-object mutations. With the pipeline running these are
  /// acknowledged at publish time (durable asynchronously); use Apply
  /// with kDurable — or Checkpoint() — to block on durability.
  [[nodiscard]] Result<ObjectId> Insert(const Rect& mbr, uint32_t payload = 0);
  [[nodiscard]] Result<ObjectId> InsertPolygon(const Polygon& poly);
  [[nodiscard]] Status Erase(ObjectId oid);

  /// Bulk loads rectangles into an empty DB.
  [[nodiscard]] Status BulkLoad(const std::vector<Rect>& data, double fill = 0.9);

  /// Applies `batch` atomically (per shard — see DESIGN.md "Sharded
  /// partitions" for the cross-shard visibility contract). kDurable
  /// (default) returns once the batch is fsynced on every involved
  /// shard; kPublished returns once readers can see it (the batch
  /// becomes durable asynchronously and rolls back as a unit if a
  /// crash beats the fsync).
  [[nodiscard]] Result<std::vector<ObjectId>> Apply(
      const WriteBatch& batch, Durability durability = Durability::kDurable);

  // ----------------------------------------------------------- replication

  /// Attaches `sink` as this DB's commit sink (core/commit_sink.h): from
  /// now on every batch published through the facade is reported to
  /// OnCommit with resolved oids, serialized by an internal replication
  /// mutex so sink callbacks observe strictly increasing epochs. Pass
  /// nullptr to detach. Fails if a different sink is already attached,
  /// and while a sink is attached InsertPolygon/BulkLoad are rejected
  /// (they have no batch representation to ship). The sink must stay
  /// alive until detached.
  [[nodiscard]] Status SetCommitSink(CommitSink* sink);

  /// Replays a leader-resolved batch on a follower replica: every insert
  /// must carry its leader-assigned oid in WriteOp::preassigned, which
  /// is what keeps replica object ids byte-identical to the leader's.
  /// Publish-time semantics (durability follows asynchronously through
  /// the group-commit pipeline, exactly like the leader's own commit).
  [[nodiscard]] Result<std::vector<ObjectId>> ApplyReplicated(
      const WriteBatch& batch);

  // ---------------------------------------------------------- durability

  /// Makes everything written so far durable: waits out the pipeline(s)
  /// in group mode, or checkpoints + flushes + commits synchronously
  /// otherwise. No-op-ish for an unjournaled in-memory DB (state is
  /// checkpointed so Stats()/reopen paths stay coherent).
  [[nodiscard]] Status Checkpoint();

  /// Blocks until `epoch` is durable (group mode; see
  /// SpatialIndex::WaitDurable). timeout_ms 0 waits indefinitely. On a
  /// sharded DB this waits on every shard's durable epoch as of the
  /// call (conservative for older epochs).
  [[nodiscard]] Status WaitDurable(uint64_t epoch, uint64_t timeout_ms = 0);

  // ------------------------------------------------------------ plumbing

  DBStats Stats() const;

  /// Per-shard counter breakdown (one entry for a single-shard DB).
  std::vector<shard::ShardCounters> ShardStats() const;

  bool sharded() const;
  uint32_t shards() const;

  uint64_t write_epoch() const;
  uint64_t object_count() const;

  /// Shard 0's build counters (exact for a single-shard DB; for a
  /// sharded DB use Stats(), which aggregates).
  const IndexBuildStats& build_stats() const;

  /// Cumulative page I/O counters of shard 0's pager (the only pager of
  /// a single-shard DB).
  const IoStats& io_stats() const;

  /// Benchmarking aid: simulated per-page-read device latency on every
  /// shard (see Pager::set_simulated_read_latency_us).
  void set_simulated_read_latency_us(uint32_t us);

  /// Benchmarking aid: drops every clean cached page on every shard so
  /// the next query runs against a cold cache. Fails if dirty or pinned
  /// pages would be lost — checkpoint first.
  [[nodiscard]] Status ClearCache();

  /// A query executor driving this DB over `threads` workers. For a
  /// sharded DB the executor scatter-gathers across the shard engines
  /// (parallelizing across shards before slicing within them). The
  /// executor must not outlive the DB.
  std::unique_ptr<QueryExecutor> NewExecutor(size_t threads);

  /// Shard 0's index — the escape hatch for engine-level wiring and
  /// diagnostics (LevelHistogram, btree stats). It is the whole engine
  /// of a single-shard DB; on a sharded DB it sees only shard 0's
  /// slice, so prefer the typed DB methods for data operations.
  SpatialIndex* index();

  /// The router behind a sharded DB; nullptr semantics never arise —
  /// a single-shard DB has a router too (with one engine and trivial
  /// routing). Engine-level wiring for the server and tests.
  shard::ShardRouter* router();

 private:
  DB() = default;

  struct Impl;  ///< owns the router (which owns the shard engines)
  std::unique_ptr<Impl> impl_;
  bool journaled_ = false;
};

}  // namespace zdb

#endif  // ZDB_ZDB_DB_H_
