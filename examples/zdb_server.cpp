// Copyright (c) zdb authors. Licensed under the MIT license.
//
// zdb network daemon: serves one spatial index over the binary wire
// protocol on TCP and/or a unix-domain socket.
//
//   $ ./build/examples/zdb_server --port 4490
//   zdb_server: listening on 127.0.0.1:4490 (workers 4, queue 64)
//
// Options:
//   --host H          bind address            (default 127.0.0.1)
//   --port P          TCP port; 0 = ephemeral (default 4490)
//   --unix PATH       also listen on a unix-domain socket
//   --net-threads N   epoll event-loop threads (default 2)
//   --workers N       request worker threads  (default 4)
//   --queue N         admission queue bound   (default 64)
//   --backlog N       listen(2) backlog       (default 128)
//   --idle-ms N       idle connection timeout (default 30000; 0 = never)
//   --exec-threads N  intra-query pool size   (default 2; 0 = off)
//   --k N             size-bound redundancy k (default 4)
//   --pool-pages N    buffer pool pages (per shard, default 1024)
//   --db PATH         serve a durable database file (default: in-memory)
//   --shards N        z-prefix shard engines  (default 1; reopen keeps
//                     the stored layout)
//   --preload N       seed N random rectangles before serving
//   --seed S          preload RNG seed        (default 42)
//   --role R          standalone | leader | follower (default standalone)
//   --leader URI      leader endpoint, follower role only
//                     (tcp://host:port or unix://path)
//   --repl-retain N   leader log ring size, records (default 0 = all)
//   --repl-window N   per-follower unacked record cap (default 64)
//
// A leader ships every committed batch to subscribed followers; a
// follower replays the leader's log (reconnecting with backoff) and
// rejects direct writes with NOT_LEADER naming the leader's endpoint.
//
// The database runs the group-commit durability pipeline (an in-memory
// server uses a memory-backed journal), so APPLY requests choose between
// ack-after-fsync (kDurable, the default) and ack-on-publish
// (kPublished) per request.
//
// A client STATS request returns a JSON counter snapshot; a client
// SHUTDOWN request drains the server gracefully and exits.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>

#include "server/server.h"
#include "zdb/db.h"

using namespace zdb;

int main(int argc, char** argv) {
  net::ServerOptions opt;
  opt.port = 4490;
  uint32_t k = 4;
  size_t pool_pages = 1024;
  uint32_t shards = 1;
  std::string db_path;
  size_t preload = 0;
  uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      opt.host = next();
    } else if (arg == "--port") {
      opt.port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--unix") {
      opt.unix_path = next();
    } else if (arg == "--net-threads") {
      opt.net_threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--workers") {
      opt.workers = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--queue") {
      opt.queue_capacity = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--backlog") {
      opt.listen_backlog =
          static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--idle-ms") {
      opt.idle_timeout_ms = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--exec-threads") {
      opt.exec_threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--k") {
      k = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--pool-pages") {
      pool_pages = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--shards") {
      shards = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--db") {
      db_path = next();
    } else if (arg == "--preload") {
      preload = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--role") {
      const std::string role = next();
      if (role == "standalone") {
        opt.role = net::ServerRole::kStandalone;
      } else if (role == "leader") {
        opt.role = net::ServerRole::kLeader;
      } else if (role == "follower") {
        opt.role = net::ServerRole::kFollower;
      } else {
        std::fprintf(stderr,
                     "--role wants standalone, leader or follower\n");
        return 2;
      }
    } else if (arg == "--leader") {
      opt.leader_endpoint = next();
    } else if (arg == "--repl-retain") {
      opt.repl_retain_records = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--repl-window") {
      opt.repl_window = std::strtoul(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  DBOptions options;
  options.index.data = DecomposeOptions::SizeBound(k);
  options.cache_pages = pool_pages;
  // Journal even the in-memory server so the group-commit pipeline runs
  // and clients get real per-request durability semantics.
  options.memory_journal = true;
  options.shards = shards;
  auto db_r = DB::Open(db_path, options);
  if (!db_r.ok()) {
    std::fprintf(stderr, "zdb_server: open failed: %s\n",
                 db_r.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_r).value();

  net::Server server(db.get(), opt);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "zdb_server: %s\n", s.ToString().c_str());
    return 1;
  }

  // Preload after Start(): on a leader the commit sink attaches during
  // Start, so seeding earlier would leave the seed batch out of the
  // shipped log and followers permanently missing it.
  if (preload > 0) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> pos(0.0, 0.94);
    std::uniform_real_distribution<double> ext(0.001, 0.05);
    WriteBatch batch;
    for (size_t i = 0; i < preload; ++i) {
      const double x = pos(rng), y = pos(rng);
      batch.Insert(Rect{x, y, x + ext(rng), y + ext(rng)});
    }
    auto r = db->Apply(batch);
    if (!r.ok()) {
      std::fprintf(stderr, "preload failed: %s\n",
                   r.status().ToString().c_str());
      server.Stop();
      return 1;
    }
    std::printf("zdb_server: preloaded %zu objects (seed %llu)\n", preload,
                static_cast<unsigned long long>(seed));
  }
  if (opt.role == net::ServerRole::kLeader) {
    std::printf("zdb_server: role leader\n");
  } else if (opt.role == net::ServerRole::kFollower) {
    std::printf("zdb_server: role follower, leader %s\n",
                opt.leader_endpoint.c_str());
  }
  if (opt.tcp) {
    std::printf(
        "zdb_server: listening on %s:%u (net threads %zu, workers %zu, "
        "queue %zu, shards %u)\n",
        opt.host.c_str(), server.port(), opt.net_threads, opt.workers,
        opt.queue_capacity, db->shards());
  }
  if (!opt.unix_path.empty()) {
    std::printf("zdb_server: listening on unix:%s\n", opt.unix_path.c_str());
  }
  std::fflush(stdout);

  server.WaitForShutdownRequest();
  std::printf("zdb_server: shutdown requested, draining...\n");
  server.Stop();
  std::printf("zdb_server: bye\n");
  return 0;
}
