// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Durable spatial database on a real file: build and checkpoint on the
// first run, reopen and query on subsequent runs — demonstrating that
// the whole engine (pager, B+-tree, object/polygon stores, index state)
// round-trips through disk.
//
// DB::Open owns the file, the rollback journal (`path + "-journal"`),
// the catalog page, and crash recovery: an interrupted build or an
// unfinished durability group rolls back atomically on the next open.
//
//   $ ./build/examples/persistent_db /tmp/city.zdb        # creates
//   $ ./build/examples/persistent_db /tmp/city.zdb        # reopens

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

#include "workload/datagen.h"
#include "zdb/db.h"

using namespace zdb;

namespace {

int Build(const std::string& path) {
  DBOptions opt;
  opt.index.data = DecomposeOptions::SizeBound(8);
  opt.cache_pages = 128;
  auto db_r = DB::Open(path, opt);
  if (!db_r.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 db_r.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_r).value();

  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  const auto city_blocks = GenerateData(20000, dg);
  if (!db->BulkLoad(city_blocks).ok()) return 1;
  // The group-commit pipeline makes the load durable in the background;
  // Checkpoint() waits until everything written is on disk.
  if (!db->Checkpoint().ok()) return 1;

  const DBStats s = db->Stats();
  std::printf("built %llu objects into %s (%u pages, %.1f KiB)\n",
              static_cast<unsigned long long>(s.objects), path.c_str(),
              s.pages, s.pages * s.page_size / 1024.0);
  std::printf("run again to reopen.\n");
  return 0;
}

int Reopen(const std::string& path) {
  // Open runs crash recovery: an interrupted batch is rolled back here.
  auto db_r = DB::Open(path);
  if (!db_r.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_r.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_r).value();

  const DBStats s = db->Stats();
  std::printf("reopened: %llu objects, redundancy %.2f\n",
              static_cast<unsigned long long>(s.objects), s.redundancy);

  QueryStats qs;
  auto hits = db->Window(Rect{0.45, 0.45, 0.55, 0.55}, &qs);
  if (!hits.ok()) return 1;
  std::printf(
      "downtown window: %zu blocks (candidates %llu, false hits %llu, "
      "%llu page reads)\n",
      hits.value().size(),
      static_cast<unsigned long long>(qs.candidates),
      static_cast<unsigned long long>(qs.false_hits),
      static_cast<unsigned long long>(db->io_stats().page_reads));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/zdb_persistent_example.db";
  struct stat st;
  const bool exists = ::stat(path.c_str(), &st) == 0 && st.st_size > 0;
  return exists ? Reopen(path) : Build(path);
}
