// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Durable spatial database on a real file: build and checkpoint on the
// first run, reopen and query on subsequent runs — demonstrating that
// the whole engine (pager, B+-tree, object/polygon stores, index state)
// round-trips through disk.
//
//   $ ./build/examples/persistent_db /tmp/city.zdb        # creates
//   $ ./build/examples/persistent_db /tmp/city.zdb        # reopens

#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <sys/stat.h>

#include "core/spatial_index.h"
#include "storage/pager.h"
#include "workload/datagen.h"

using namespace zdb;

namespace {

// The master page is stored at a well-known location by this example: we
// simply remember it as the first page allocated after formatting. A real
// application would keep it in its own catalog; here page 1 is reserved
// by allocating it before anything else.
constexpr PageId kCatalogPage = 1;

int Build(const std::string& path) {
  auto file = PosixFile::Open(path).value();
  // A rollback journal makes the whole build atomic: a crash before
  // CommitBatch leaves an empty database, never a half-built one.
  auto journal = PosixFile::Open(path + "-journal").value();
  auto pager =
      Pager::Open(std::move(file), std::move(journal), 4096).value();
  BufferPool pool(pager.get(), 128);
  if (!pager->BeginBatch().ok()) return 1;

  // Reserve the catalog page first so it lands at a known id.
  {
    auto catalog = pool.New().value();
    if (catalog.id() != kCatalogPage) {
      std::fprintf(stderr, "unexpected catalog page %u\n", catalog.id());
      return 1;
    }
  }

  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(8);
  auto index = SpatialIndex::Create(&pool, opt).value();

  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  const auto city_blocks = GenerateData(20000, dg);
  if (!index->BulkLoad(city_blocks).ok()) return 1;

  const PageId master = index->Checkpoint().value();
  {
    auto catalog = pool.Fetch(kCatalogPage).value();
    std::memcpy(catalog.mutable_data(), &master, sizeof(master));
  }
  if (!pool.FlushAll().ok() || !pager->CommitBatch().ok()) return 1;

  std::printf("built %llu objects into %s (%u pages, %.1f KiB)\n",
              static_cast<unsigned long long>(index->object_count()),
              path.c_str(), pager->page_count(),
              pager->page_count() * 4096 / 1024.0);
  std::printf("run again to reopen.\n");
  return 0;
}

int Reopen(const std::string& path) {
  auto file = PosixFile::Open(path).value();
  auto journal = PosixFile::Open(path + "-journal").value();
  // Open runs crash recovery: an interrupted batch is rolled back here.
  auto pager_r = Pager::Open(std::move(file), std::move(journal), 4096);
  if (!pager_r.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 pager_r.status().ToString().c_str());
    return 1;
  }
  auto pager = std::move(pager_r).value();
  BufferPool pool(pager.get(), 128);

  PageId master;
  {
    auto catalog = pool.Fetch(kCatalogPage).value();
    std::memcpy(&master, catalog.data(), sizeof(master));
  }
  auto index_r = SpatialIndex::Open(&pool, master);
  if (!index_r.ok()) {
    std::fprintf(stderr, "index open failed: %s\n",
                 index_r.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(index_r).value();

  std::printf("reopened: %llu objects, redundancy %.2f, tree height %u\n",
              static_cast<unsigned long long>(index->object_count()),
              index->build_stats().redundancy(), index->btree()->height());

  QueryStats qs;
  auto hits = index->WindowQuery(Rect{0.45, 0.45, 0.55, 0.55}, &qs);
  if (!hits.ok()) return 1;
  std::printf(
      "downtown window: %zu blocks (candidates %llu, false hits %llu, "
      "%llu page reads)\n",
      hits.value().size(),
      static_cast<unsigned long long>(qs.candidates),
      static_cast<unsigned long long>(qs.false_hits),
      static_cast<unsigned long long>(pager->io_stats().page_reads));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/zdb_persistent_example.db";
  struct stat st;
  const bool exists = ::stat(path.c_str(), &st) == 0 && st.st_size > 0;
  return exists ? Reopen(path) : Build(path);
}
