// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Redundancy auto-tuning: the paper's practical upshot is that the right
// redundancy bound depends on the data and the query mix. This tool
// sweeps the size-bound k on a sample of the workload and recommends the
// configuration with the lowest total page cost, weighting query and
// update traffic per a user-settable ratio.
//
//   $ ./build/examples/tune_redundancy [distribution] [n]
//     distribution: uniform-small | uniform-large | clusters | diagonal |
//                   skewed-sizes | contours

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util/runner.h"
#include "bench_util/table.h"

using namespace zdb;

int main(int argc, char** argv) {
  Distribution dist = Distribution::kClusters;
  if (argc > 1) {
    bool found = false;
    for (Distribution d : kAllDistributions) {
      if (DistributionName(d) == argv[1]) {
        dist = d;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown distribution '%s'\n", argv[1]);
      return 1;
    }
  }
  const size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10000;

  // Workload model: mostly 0.1% windows, some 1% windows, a few points,
  // and one insert per ten queries.
  const double kInsertsPerQuery = 0.1;
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto small_windows = GenerateWindows(20, 0.001, QueryGenOptions{});
  const auto big_windows = GenerateWindows(10, 0.01, QueryGenOptions{});
  const auto points = GeneratePoints(20, 17);

  Table table("redundancy tuning — " + DistributionName(dist) + " (" +
                  std::to_string(n) + " objects)",
              {"k", "query cost", "insert cost", "weighted", "index pages"});

  double best_cost = 1e300;
  uint32_t best_k = 1;
  for (uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Env env = MakeEnv();
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(k);
    BuildResult br;
    auto index = BuildZIndex(&env, data, opt, &br).value();

    auto r1 = RunWindowQueries(&env, index.get(), small_windows).value();
    auto r2 = RunWindowQueries(&env, index.get(), big_windows).value();
    auto r3 = RunPointQueries(&env, index.get(), points).value();
    // Weight by the workload mix: 2/3 small windows, 1/6 big, 1/6 points.
    const double query_cost = (r1.avg_accesses * 4 + r2.avg_accesses +
                               r3.avg_accesses) / 6.0;
    const double weighted =
        query_cost + kInsertsPerQuery * br.avg_insert_accesses;
    auto stats = index->btree()->ComputeStats().value();

    if (weighted < best_cost) {
      best_cost = weighted;
      best_k = k;
    }
    table.AddRow({std::to_string(k), Fmt(query_cost, 1),
                  Fmt(br.avg_insert_accesses, 2), Fmt(weighted, 1),
                  Fmt(static_cast<uint64_t>(stats.total_pages()))});
  }
  table.Print();
  std::printf(
      "\nrecommendation: size-bound k = %u (%.1f weighted accesses per "
      "operation)\n",
      best_k, best_cost);
  return 0;
}
