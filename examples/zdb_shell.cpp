// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Interactive shell over a zdb spatial index — insert, query and inspect
// from stdin. Useful for exploring the redundancy behaviour by hand.
//
//   $ ./build/examples/zdb_shell [k]
//   zdb> insert 0.1 0.1 0.3 0.2
//   id 0 (3 elements)
//   zdb> window 0.0 0.0 0.5 0.5
//   hits: 0    (candidates 3, false hits 0, 7 page accesses)
//   zdb> help
//
// Remote mode talks to a running zdb_server instead of an in-process
// index (see examples/zdb_server.cpp):
//
//   $ ./build/examples/zdb_shell --connect 127.0.0.1:4490
//   $ ./build/examples/zdb_shell --connect unix:/tmp/zdb.sock

#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <sstream>
#include <string>

#include "client/client.h"
#include "zdb/db.h"

using namespace zdb;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  insert X1 Y1 X2 Y2     add a rectangle (unit-square coords)\n"
      "  poly X1 Y1 X2 Y2 ...   add a polygon (3+ vertices)\n"
      "  window X1 Y1 X2 Y2     objects intersecting the window\n"
      "  contain X1 Y1 X2 Y2    objects fully inside the window\n"
      "  point X Y              objects containing the point\n"
      "  knn X Y K              K nearest objects\n"
      "  erase ID               remove an object\n"
      "  stats                  index statistics\n"
      "  levels                 element-level histogram\n"
      "  help | quit\n");
}

void PrintRemoteHelp() {
  std::printf(
      "remote commands:\n"
      "  insert X1 Y1 X2 Y2     add a rectangle (unit-square coords)\n"
      "  window X1 Y1 X2 Y2     objects intersecting the window\n"
      "  point X Y              objects containing the point\n"
      "  knn X Y K              K nearest objects\n"
      "  erase ID               remove an object\n"
      "  stats                  server + engine counters (JSON)\n"
      "  ping                   round-trip check\n"
      "  shutdown               ask the server to drain and exit\n"
      "  help | quit\n");
}

/// Maps the legacy --connect spellings ("HOST:PORT", "unix:PATH") onto
/// endpoint URIs; URIs pass through untouched.
std::string TargetToUri(const std::string& target) {
  if (target.rfind("tcp://", 0) == 0 || target.rfind("unix://", 0) == 0) {
    return target;
  }
  if (target.rfind("unix:", 0) == 0) return "unix://" + target.substr(5);
  return "tcp://" + target;
}

int RunRemote(const std::string& target) {
  Result<net::Client> conn = net::Client::Connect(TargetToUri(target));
  if (!conn.ok()) {
    std::fprintf(stderr, "connect: %s\n", conn.status().ToString().c_str());
    return 1;
  }
  net::Client client = std::move(conn).value();
  std::printf("zdb shell — remote (%s). Type 'help'.\n", target.c_str());

  std::string line;
  while (std::printf("zdb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintRemoteHelp();
      continue;
    }
    if (cmd == "insert") {
      Rect r;
      if (!(in >> r.xlo >> r.ylo >> r.xhi >> r.yhi)) {
        std::printf("usage: insert X1 Y1 X2 Y2\n");
        continue;
      }
      WriteBatch batch;
      batch.Insert(r);
      auto reply = client.Apply(batch);
      if (!reply.ok()) {
        std::printf("error: %s\n", reply.status().ToString().c_str());
        continue;
      }
      std::printf("id %u (epoch %llu)\n", reply->inserted[0],
                  static_cast<unsigned long long>(reply->epoch_after));
    } else if (cmd == "window") {
      Rect w;
      if (!(in >> w.xlo >> w.ylo >> w.xhi >> w.yhi)) {
        std::printf("usage: window X1 Y1 X2 Y2\n");
        continue;
      }
      auto reply = client.Window(w);
      if (!reply.ok()) {
        std::printf("error: %s\n", reply.status().ToString().c_str());
        continue;
      }
      std::printf("hits:");
      for (ObjectId oid : reply->ids) std::printf(" %u", oid);
      std::printf("   (epochs %llu..%llu)\n",
                  static_cast<unsigned long long>(reply->epoch_before),
                  static_cast<unsigned long long>(reply->epoch_after));
    } else if (cmd == "point") {
      Point p;
      if (!(in >> p.x >> p.y)) {
        std::printf("usage: point X Y\n");
        continue;
      }
      auto reply = client.Point(p);
      if (!reply.ok()) {
        std::printf("error: %s\n", reply.status().ToString().c_str());
        continue;
      }
      std::printf("hits:");
      for (ObjectId oid : reply->ids) std::printf(" %u", oid);
      std::printf("\n");
    } else if (cmd == "knn") {
      Point p;
      uint32_t kk;
      if (!(in >> p.x >> p.y >> kk)) {
        std::printf("usage: knn X Y K\n");
        continue;
      }
      auto reply = client.Nearest(p, kk);
      if (!reply.ok()) {
        std::printf("error: %s\n", reply.status().ToString().c_str());
        continue;
      }
      for (const auto& [oid, dist] : reply->hits) {
        std::printf("  id %u at %.5f\n", oid, dist);
      }
    } else if (cmd == "erase") {
      ObjectId oid;
      if (!(in >> oid)) {
        std::printf("usage: erase ID\n");
        continue;
      }
      WriteBatch batch;
      batch.Erase(oid);
      auto reply = client.Apply(batch);
      std::printf("%s\n",
                  reply.ok() ? "ok" : reply.status().ToString().c_str());
    } else if (cmd == "stats") {
      auto reply = client.Stats();
      if (!reply.ok()) {
        std::printf("error: %s\n", reply.status().ToString().c_str());
        continue;
      }
      std::printf("%s\n", reply.value().c_str());
    } else if (cmd == "ping") {
      Status s = client.Ping();
      std::printf("%s\n", s.ok() ? "pong" : s.ToString().c_str());
    } else if (cmd == "shutdown") {
      Status s = client.Shutdown();
      std::printf("%s\n",
                  s.ok() ? "server draining" : s.ToString().c_str());
      break;
    } else {
      std::printf("unknown remote command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--connect") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: zdb_shell --connect HOST:PORT|unix:PATH\n");
      return 2;
    }
    return RunRemote(argv[2]);
  }
  uint32_t k = 4;
  uint32_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      k = static_cast<uint32_t>(std::strtoul(arg.c_str(), nullptr, 10));
    }
  }
  DBOptions options;
  options.index.data = DecomposeOptions::SizeBound(k);
  options.shards = shards;
  auto db_r = DB::Open(":memory:", options);
  if (!db_r.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_r.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_r).value();
  std::printf("zdb shell — size-bound k=%u, %u shard%s. Type 'help'.\n", k,
              db->shards(), db->shards() == 1 ? "" : "s");

  std::string line;
  while (std::printf("zdb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
      continue;
    }

    const IoStats snap = db->io_stats();
    if (cmd == "insert") {
      Rect r;
      if (!(in >> r.xlo >> r.ylo >> r.xhi >> r.yhi)) {
        std::printf("usage: insert X1 Y1 X2 Y2\n");
        continue;
      }
      // Stats() sums index entries over every shard (build_stats() is
      // shard 0 only); on a sharded DB a straddler's count includes its
      // replicas.
      const uint64_t before = db->Stats().index_entries;
      auto oid = db->Insert(r);
      if (!oid.ok()) {
        std::printf("error: %s\n", oid.status().ToString().c_str());
        continue;
      }
      std::printf("id %u (%llu elements)\n", oid.value(),
                  static_cast<unsigned long long>(
                      db->Stats().index_entries - before));
    } else if (cmd == "poly") {
      std::vector<Point> ring;
      double x, y;
      while (in >> x >> y) ring.push_back(Point{x, y});
      auto oid = db->InsertPolygon(Polygon(std::move(ring)));
      if (!oid.ok()) {
        std::printf("error: %s\n", oid.status().ToString().c_str());
        continue;
      }
      std::printf("id %u (polygon)\n", oid.value());
    } else if (cmd == "window" || cmd == "contain") {
      Rect w;
      if (!(in >> w.xlo >> w.ylo >> w.xhi >> w.yhi)) {
        std::printf("usage: %s X1 Y1 X2 Y2\n", cmd.c_str());
        continue;
      }
      QueryStats qs;
      auto hits = cmd == "window" ? db->Window(w, &qs)
                                  : db->Containment(w, &qs);
      if (!hits.ok()) {
        std::printf("error: %s\n", hits.status().ToString().c_str());
        continue;
      }
      std::printf("hits:");
      for (ObjectId oid : hits.value()) std::printf(" %u", oid);
      std::printf(
          "\n  (candidates %llu, duplicates %llu, false hits %llu, "
          "%llu page accesses)\n",
          static_cast<unsigned long long>(qs.candidates),
          static_cast<unsigned long long>(qs.duplicates()),
          static_cast<unsigned long long>(qs.false_hits),
          static_cast<unsigned long long>(
              db->io_stats().Since(snap).accesses()));
    } else if (cmd == "point") {
      Point p;
      if (!(in >> p.x >> p.y)) {
        std::printf("usage: point X Y\n");
        continue;
      }
      auto hits = db->Point(p);
      if (!hits.ok()) {
        std::printf("error: %s\n", hits.status().ToString().c_str());
        continue;
      }
      std::printf("hits:");
      for (ObjectId oid : hits.value()) std::printf(" %u", oid);
      std::printf("\n");
    } else if (cmd == "knn") {
      Point p;
      size_t kk;
      if (!(in >> p.x >> p.y >> kk)) {
        std::printf("usage: knn X Y K\n");
        continue;
      }
      auto nn = db->Nearest(p, kk);
      if (!nn.ok()) {
        std::printf("error: %s\n", nn.status().ToString().c_str());
        continue;
      }
      for (const auto& [oid, dist] : nn.value()) {
        std::printf("  id %u at %.5f\n", oid, dist);
      }
    } else if (cmd == "erase") {
      ObjectId oid;
      if (!(in >> oid)) {
        std::printf("usage: erase ID\n");
        continue;
      }
      Status s = db->Erase(oid);
      std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
    } else if (cmd == "stats") {
      if (db->sharded()) {
        const DBStats agg = db->Stats();
        std::printf(
            "objects %llu, index entries %llu (summed over %u shards), "
            "redundancy %.2f\n",
            static_cast<unsigned long long>(agg.objects),
            static_cast<unsigned long long>(agg.index_entries), agg.shards,
            agg.redundancy);
        const auto per_shard = db->ShardStats();
        for (size_t s = 0; s < per_shard.size(); ++s) {
          std::printf(
              "  shard %zu: %llu objects, %llu entries, epoch %llu, "
              "%llu batches\n",
              s, static_cast<unsigned long long>(per_shard[s].objects),
              static_cast<unsigned long long>(per_shard[s].index_entries),
              static_cast<unsigned long long>(per_shard[s].write_epoch),
              static_cast<unsigned long long>(per_shard[s].batches));
        }
        continue;
      }
      auto tree_stats = db->index()->btree()->ComputeStats();
      if (!tree_stats.ok()) continue;
      std::printf(
          "objects %llu, index entries %llu, redundancy %.2f, avg error "
          "%.3f\nB+-tree: height %u, %u leaf + %u internal pages, "
          "%.2f leaf fill\n",
          static_cast<unsigned long long>(db->build_stats().objects),
          static_cast<unsigned long long>(
              db->build_stats().index_entries),
          db->build_stats().redundancy(),
          db->build_stats().avg_error(), tree_stats->height,
          tree_stats->leaf_pages, tree_stats->internal_pages,
          tree_stats->avg_leaf_fill);
    } else if (cmd == "levels") {
      auto hist = db->index()->LevelHistogram();
      if (!hist.ok()) continue;
      for (size_t lvl = 0; lvl < hist->size(); ++lvl) {
        if ((*hist)[lvl] > 0) {
          std::printf("  level %2zu: %llu entries\n", lvl,
                      static_cast<unsigned long long>((*hist)[lvl]));
        }
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  return 0;
}
