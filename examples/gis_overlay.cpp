// Copyright (c) zdb authors. Licensed under the MIT license.
//
// GIS map overlay: the motivating workload of the spatial-join
// experiment. Two synthetic map layers — elevation-contour segments and
// polygonal land parcels — are indexed as separate in-memory databases
// and overlaid with the z-merge spatial join. Parcels are first-class
// polygon objects: the exact ring is decomposed into z-elements (not
// just the MBR) and the join refines against the exact geometry
// automatically. Finishes with a nearest-neighbor lookup ("closest
// parcels to the survey marker").
//
//   $ ./build/examples/gis_overlay [n_per_layer]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "workload/datagen.h"
#include "zdb/db.h"

using namespace zdb;

namespace {

/// A convex-ish parcel polygon around a center.
Polygon MakeParcel(Random* rng, double cx, double cy, double radius) {
  std::vector<Point> ring;
  const int sides = 5 + static_cast<int>(rng->Uniform(4));
  for (int i = 0; i < sides; ++i) {
    const double angle = 2 * 3.14159265358979 * i / sides;
    const double r = radius * rng->UniformDouble(0.6, 1.0);
    ring.push_back(Point{cx + r * std::cos(angle), cy + r * std::sin(angle)});
  }
  return Polygon(std::move(ring));
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5000;

  DBOptions opt;
  opt.index.data = DecomposeOptions::SizeBound(4);
  opt.page_size = 1024;
  opt.cache_pages = 32;

  // Layer 1: contour-line segments of the synthetic height field.
  DataGenOptions dg;
  dg.distribution = Distribution::kContours;
  const auto contours = GenerateData(n, dg);
  auto contour_db = DB::Open(":memory:", opt).value();
  for (const Rect& r : contours) (void)contour_db->Insert(r);

  // Layer 2: polygonal land parcels, indexed by their exact geometry.
  Random rng(2024);
  auto parcel_db = DB::Open(":memory:", opt).value();
  size_t parcels = 0;
  while (parcels < n / 5) {
    Polygon poly = MakeParcel(&rng, rng.NextDouble(), rng.NextDouble(),
                              rng.UniformDouble(0.005, 0.03));
    const Rect mbr = poly.Bounds();
    if (!(mbr.xlo >= 0 && mbr.yhi < 1.0 && mbr.ylo >= 0 && mbr.xhi < 1.0)) {
      continue;  // keep parcels inside the map sheet
    }
    if (!parcel_db->InsertPolygon(poly).ok()) return 1;
    ++parcels;
  }
  std::printf(
      "layers: %llu contour segments, %llu parcels "
      "(parcel redundancy %.2f, approximation error %.2f)\n",
      static_cast<unsigned long long>(contour_db->object_count()),
      static_cast<unsigned long long>(parcel_db->object_count()),
      parcel_db->build_stats().redundancy(),
      parcel_db->build_stats().avg_error());

  // Overlay: which contour segments cross which parcels? The join is
  // engine-level wiring between two indexes, so it runs through the
  // facade's index() escape hatch. It refines polygon participants
  // against their exact rings.
  JoinStats js;
  auto pairs = SpatialJoin(contour_db->index(), parcel_db->index(), &js);
  if (!pairs.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 pairs.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "overlay: %llu entries scanned, %llu candidate pairs "
      "(%llu duplicates, %llu false), %zu exact crossings\n",
      static_cast<unsigned long long>(js.entries_scanned),
      static_cast<unsigned long long>(js.candidate_pairs),
      static_cast<unsigned long long>(js.duplicate_pairs()),
      static_cast<unsigned long long>(js.false_pairs),
      pairs.value().size());

  // Site analysis: the three parcels nearest the survey marker.
  const Point marker{0.5, 0.5};
  auto nearest = parcel_db->Nearest(marker, 3);
  if (!nearest.ok()) return 1;
  std::printf("parcels nearest the survey marker (0.5, 0.5):\n");
  for (const auto& [oid, dist] : nearest.value()) {
    std::printf("  parcel %u at distance %.4f\n", oid, dist);
  }

  std::printf("page accesses so far: %llu\n",
              static_cast<unsigned long long>(
                  contour_db->io_stats().accesses() +
                  parcel_db->io_stats().accesses()));
  return 0;
}
