// Copyright (c) zdb authors. Licensed under the MIT license.
//
// CAD viewport browsing: a board of parts with heavily skewed sizes
// (ground planes down to vias) is browsed by a panning/zooming viewport —
// the window-query workload of CAD/CIM systems that motivated the 1989
// spatial-access-method work. Compares the same session under three
// index configurations and prints the page-access bill for each.
//
//   $ ./build/examples/cad_window [n_parts]

#include <cstdio>
#include <cstdlib>

#include "workload/datagen.h"
#include "zdb/db.h"

using namespace zdb;

namespace {

/// A browsing session: pan across the board at three zoom levels.
std::vector<Rect> ViewportPath() {
  std::vector<Rect> path;
  for (double zoom : {0.4, 0.1, 0.02}) {
    for (double t = 0.0; t + zoom <= 1.0; t += zoom / 2) {
      path.push_back(Rect{t, t, t + zoom, t + zoom});              // diagonal pan
      path.push_back(Rect{t, 0.5 - zoom / 2, t + zoom, 0.5 + zoom / 2});
    }
  }
  return path;
}

struct SessionCost {
  uint64_t accesses = 0;
  uint64_t false_hits = 0;
  uint64_t results = 0;
};

SessionCost RunSession(DB* db, const std::vector<Rect>& path) {
  SessionCost cost;
  (void)db->ClearCache();  // start the session cold
  const IoStats snap = db->io_stats();
  for (const Rect& viewport : path) {
    QueryStats qs;
    auto hits = db->Window(viewport, &qs);
    if (!hits.ok()) std::exit(1);
    cost.false_hits += qs.false_hits;
    cost.results += hits.value().size();
  }
  cost.accesses = db->io_stats().Since(snap).accesses();
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;

  DataGenOptions dg;
  dg.distribution = Distribution::kSkewedSizes;  // vias to ground planes
  const auto parts = GenerateData(n, dg);
  const auto path = ViewportPath();
  std::printf("CAD board: %zu parts, browsing session of %zu viewports\n",
              parts.size(), path.size());

  struct Config {
    const char* name;
    DBOptions options;
  };
  Config configs[3];
  configs[0].name = "non-redundant (k=1)";
  configs[0].options.index.data = DecomposeOptions::SizeBound(1);
  configs[1].name = "redundant (k=8)";
  configs[1].options.index.data = DecomposeOptions::SizeBound(8);
  configs[2].name = "redundant (k=8) + MBRs in leaves";
  configs[2].options.index.data = DecomposeOptions::SizeBound(8);
  configs[2].options.index.store_mbr_in_leaf = true;

  for (Config& cfg : configs) {
    cfg.options.page_size = 512;
    // A browsing session keeps a modest cache warm across viewports.
    cfg.options.cache_pages = 32;
    auto db = DB::Open(":memory:", cfg.options).value();
    for (const Rect& r : parts) {
      if (!db->Insert(r).ok()) return 1;
    }
    // Write the built index back so the session can start cold.
    if (!db->Checkpoint().ok()) return 1;

    const SessionCost cost = RunSession(db.get(), path);
    std::printf(
        "%-34s session accesses %8llu  false hits %6llu  parts drawn %llu\n",
        cfg.name, static_cast<unsigned long long>(cost.accesses),
        static_cast<unsigned long long>(cost.false_hits),
        static_cast<unsigned long long>(cost.results));
  }
  return 0;
}
