// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Quickstart: build a redundant z-order spatial index, run the four query
// types, and inspect the per-query statistics.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/spatial_index.h"
#include "storage/pager.h"

using namespace zdb;

int main() {
  // 1. Storage: a pager over an in-memory file (use PosixFile for disk)
  //    and a buffer pool of 64 frames.
  auto pager = Pager::OpenInMemory(/*page_size=*/4096);
  BufferPool pool(pager.get(), 64);

  // 2. Index configuration: decompose every object into at most 4
  //    z-elements (redundancy <= 4). Try SizeBound(1) to see the cost of
  //    the classic non-redundant scheme.
  SpatialIndexOptions options;
  options.data = DecomposeOptions::SizeBound(4);

  auto index_r = SpatialIndex::Create(&pool, options);
  if (!index_r.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 index_r.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(index_r).value();

  // 3. Insert a few objects (coordinates live in the unit square).
  struct Named {
    const char* name;
    Rect mbr;
  };
  const Named objects[] = {
      {"library", {0.10, 0.10, 0.20, 0.18}},
      {"park", {0.15, 0.12, 0.45, 0.40}},
      {"river", {0.00, 0.48, 1.00, 0.52}},  // straddles the midline!
      {"museum", {0.60, 0.60, 0.68, 0.66}},
      {"cafe", {0.62, 0.61, 0.63, 0.62}},
  };
  std::vector<const char*> names;
  for (const Named& o : objects) {
    auto oid = index->Insert(o.mbr);
    if (!oid.ok()) {
      std::fprintf(stderr, "insert failed: %s\n",
                   oid.status().ToString().c_str());
      return 1;
    }
    names.push_back(o.name);  // ids are dense: oid == insertion order
  }

  // 4. Window query with statistics.
  const Rect window{0.55, 0.55, 0.75, 0.75};
  QueryStats stats;
  auto hits = index->WindowQuery(window, &stats);
  std::printf("window [0.55,0.55 - 0.75,0.75] -> %zu hits:",
              hits.value().size());
  for (ObjectId oid : hits.value()) std::printf(" %s", names[oid]);
  std::printf(
      "\n  (query elements %llu, candidates %llu, duplicates %llu, "
      "false hits %llu)\n",
      static_cast<unsigned long long>(stats.query_elements),
      static_cast<unsigned long long>(stats.candidates),
      static_cast<unsigned long long>(stats.duplicates()),
      static_cast<unsigned long long>(stats.false_hits));

  // 5. Point query: who covers the city center?
  auto at_center = index->PointQuery(Point{0.5, 0.5});
  std::printf("point (0.5, 0.5) -> ");
  for (ObjectId oid : at_center.value()) std::printf("%s ", names[oid]);
  std::printf("\n");

  // 6. Containment: everything fully inside the north-east quadrant.
  auto contained = index->ContainmentQuery(Rect{0.5, 0.5, 1.0, 1.0});
  std::printf("inside NE quadrant -> ");
  for (ObjectId oid : contained.value()) std::printf("%s ", names[oid]);
  std::printf("\n");

  // 7. Erase and re-query.
  (void)index->Erase(3);  // museum
  auto after = index->WindowQuery(window);
  std::printf("after erasing museum -> %zu hits\n", after.value().size());

  // 8. Index accounting: achieved redundancy.
  std::printf("objects %llu, index entries %llu, redundancy %.2f\n",
              static_cast<unsigned long long>(index->build_stats().objects),
              static_cast<unsigned long long>(
                  index->build_stats().index_entries),
              index->build_stats().redundancy());
  return 0;
}
