// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Quickstart: open an in-memory zdb::DB, run the four query types, and
// inspect the per-query statistics.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "zdb/db.h"

using namespace zdb;

int main() {
  // 1. Open an in-memory database (pass a file path for a durable one).
  //    The options configure the decomposition: every object splits into
  //    at most 4 z-elements (redundancy <= 4). Try SizeBound(1) to see
  //    the cost of the classic non-redundant scheme.
  DBOptions options;
  options.index.data = DecomposeOptions::SizeBound(4);

  auto db_r = DB::Open(":memory:", options);
  if (!db_r.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_r.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_r).value();

  // 2. Insert a few objects (coordinates live in the unit square).
  struct Named {
    const char* name;
    Rect mbr;
  };
  const Named objects[] = {
      {"library", {0.10, 0.10, 0.20, 0.18}},
      {"park", {0.15, 0.12, 0.45, 0.40}},
      {"river", {0.00, 0.48, 1.00, 0.52}},  // straddles the midline!
      {"museum", {0.60, 0.60, 0.68, 0.66}},
      {"cafe", {0.62, 0.61, 0.63, 0.62}},
  };
  std::vector<const char*> names;
  for (const Named& o : objects) {
    auto oid = db->Insert(o.mbr);
    if (!oid.ok()) {
      std::fprintf(stderr, "insert failed: %s\n",
                   oid.status().ToString().c_str());
      return 1;
    }
    names.push_back(o.name);  // ids are dense: oid == insertion order
  }

  // 3. Window query with statistics.
  const Rect window{0.55, 0.55, 0.75, 0.75};
  QueryStats stats;
  auto hits = db->Window(window, &stats);
  std::printf("window [0.55,0.55 - 0.75,0.75] -> %zu hits:",
              hits.value().size());
  for (ObjectId oid : hits.value()) std::printf(" %s", names[oid]);
  std::printf(
      "\n  (query elements %llu, candidates %llu, duplicates %llu, "
      "false hits %llu)\n",
      static_cast<unsigned long long>(stats.query_elements),
      static_cast<unsigned long long>(stats.candidates),
      static_cast<unsigned long long>(stats.duplicates()),
      static_cast<unsigned long long>(stats.false_hits));

  // 4. Point query: who covers the city center?
  auto at_center = db->Point(Point{0.5, 0.5});
  std::printf("point (0.5, 0.5) -> ");
  for (ObjectId oid : at_center.value()) std::printf("%s ", names[oid]);
  std::printf("\n");

  // 5. Containment: everything fully inside the north-east quadrant.
  auto contained = db->Containment(Rect{0.5, 0.5, 1.0, 1.0});
  std::printf("inside NE quadrant -> ");
  for (ObjectId oid : contained.value()) std::printf("%s ", names[oid]);
  std::printf("\n");

  // 6. Atomic batch: erase the museum and add a theater in one step.
  WriteBatch batch;
  batch.Erase(3);  // museum
  batch.Insert(Rect{0.70, 0.70, 0.74, 0.73});
  if (!db->Apply(batch).ok()) return 1;
  names.push_back("theater");
  auto after = db->Window(window);
  std::printf("after the batch -> %zu hits\n", after.value().size());

  // 7. Index accounting: achieved redundancy.
  const DBStats s = db->Stats();
  std::printf("objects %llu, index entries %llu, redundancy %.2f\n",
              static_cast<unsigned long long>(s.objects),
              static_cast<unsigned long long>(s.index_entries),
              s.redundancy);
  return 0;
}
