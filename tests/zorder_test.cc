// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Z-order layer: Morton codes, element algebra, key codec, BIGMIN — with
// brute-force property checks on small grids.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "zorder/bigmin.h"
#include "zorder/morton.h"
#include "zorder/zkey.h"

namespace zdb {
namespace {

TEST(Morton, KnownValues) {
  // x on even bits, y on odd bits.
  EXPECT_EQ(MortonEncode(0, 0, 4), 0u);
  EXPECT_EQ(MortonEncode(1, 0, 4), 1u);
  EXPECT_EQ(MortonEncode(0, 1, 4), 2u);
  EXPECT_EQ(MortonEncode(1, 1, 4), 3u);
  EXPECT_EQ(MortonEncode(2, 0, 4), 4u);
  EXPECT_EQ(MortonEncode(0, 2, 4), 8u);
  EXPECT_EQ(MortonEncode(15, 15, 4), 255u);
}

TEST(Morton, RoundTripProperty) {
  Random rng(11);
  for (int i = 0; i < 5000; ++i) {
    const uint32_t bits = 1 + static_cast<uint32_t>(rng.Uniform(31));
    const GridCoord x = static_cast<GridCoord>(rng.Next() & ((1ULL << bits) - 1));
    const GridCoord y = static_cast<GridCoord>(rng.Next() & ((1ULL << bits) - 1));
    const uint64_t z = MortonEncode(x, y, bits);
    GridCoord rx, ry;
    MortonDecode(z, bits, &rx, &ry);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
  }
}

TEST(Morton, SpreadCollectInverse) {
  Random rng(12);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.Next());
    ASSERT_EQ(CollectBits(SpreadBits(v)), v);
  }
}

TEST(ZElement, RootAndCells) {
  const ZElement root = ZElement::Root(4);
  EXPECT_EQ(root.level, 0);
  EXPECT_EQ(root.zmin, 0u);
  EXPECT_EQ(root.zmax(), 255u);
  EXPECT_EQ(root.CellCount(), 256u);
  EXPECT_EQ(root.ToGridRect(), (GridRect{0, 0, 15, 15}));

  const ZElement cell = ZElement::Cell(5, 9, 4);
  EXPECT_EQ(cell.level, 8);
  EXPECT_TRUE(cell.is_full_resolution());
  EXPECT_EQ(cell.CellCount(), 1u);
  EXPECT_EQ(cell.ToGridRect(), (GridRect{5, 9, 5, 9}));
  EXPECT_TRUE(root.Contains(cell));
  EXPECT_FALSE(cell.Contains(root));
}

TEST(ZElement, ChildParentRoundTrip) {
  Random rng(13);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t gbits = 2 + static_cast<uint32_t>(rng.Uniform(14));
    ZElement e = ZElement::Root(gbits);
    // Walk down a random path, then back up.
    std::vector<int> path;
    while (!e.is_full_resolution() && rng.Bernoulli(0.8)) {
      const int c = static_cast<int>(rng.Uniform(2));
      path.push_back(c);
      const ZElement child = e.Child(c);
      ASSERT_TRUE(e.Contains(child));
      ASSERT_EQ(child.Parent(), e);
      ASSERT_EQ(child.level, e.level + 1);
      ASSERT_EQ(child.CellCount() * 2, e.CellCount());
      e = child;
    }
    // Siblings partition the parent's interval.
    if (e.level > 0) {
      const ZElement p = e.Parent();
      const ZElement c0 = p.Child(0);
      const ZElement c1 = p.Child(1);
      ASSERT_EQ(c0.zmin, p.zmin);
      ASSERT_EQ(c0.zmax() + 1, c1.zmin);
      ASSERT_EQ(c1.zmax(), p.zmax());
      ASSERT_FALSE(c0.Intersects(c1));
    }
  }
}

TEST(ZElement, GridRectMatchesBruteForce) {
  // On a tiny grid, an element's rect must equal the bounding box of the
  // cells whose z-codes fall in its interval.
  const uint32_t gbits = 4;
  Random rng(14);
  for (int trial = 0; trial < 500; ++trial) {
    const uint32_t level = static_cast<uint32_t>(rng.Uniform(2 * gbits + 1));
    const uint64_t z = rng.Next() & 0xff;
    const uint64_t zmin = (level == 0) ? 0 : (z & (~0ULL << (8 - level)));
    const ZElement e(zmin, static_cast<uint8_t>(level), gbits);

    GridRect expect{16, 16, 0, 0};
    for (uint64_t code = e.zmin; code <= e.zmax(); ++code) {
      GridCoord x, y;
      MortonDecode(code, gbits, &x, &y);
      expect.xlo = std::min(expect.xlo, x);
      expect.ylo = std::min(expect.ylo, y);
      expect.xhi = std::max(expect.xhi, x);
      expect.yhi = std::max(expect.yhi, y);
    }
    ASSERT_EQ(e.ToGridRect(), expect) << e.ToString();
    // The element's interval is exactly its rect's cells (dyadic rects
    // are z-contiguous).
    ASSERT_EQ(e.ToGridRect().CellCount(), e.CellCount());
  }
}

TEST(ZElement, EnclosingIsMinimal) {
  const uint32_t gbits = 5;
  Random rng(15);
  for (int trial = 0; trial < 500; ++trial) {
    GridCoord x1 = static_cast<GridCoord>(rng.Uniform(32));
    GridCoord x2 = static_cast<GridCoord>(rng.Uniform(32));
    GridCoord y1 = static_cast<GridCoord>(rng.Uniform(32));
    GridCoord y2 = static_cast<GridCoord>(rng.Uniform(32));
    const GridRect r{std::min(x1, x2), std::min(y1, y2), std::max(x1, x2),
                     std::max(y1, y2)};
    const ZElement e = ZElement::Enclosing(r, gbits);
    // Covers the rect...
    ASSERT_TRUE(e.ToGridRect().Contains(r)) << r.ToString();
    // ...and no child of it does.
    if (!e.is_full_resolution()) {
      ASSERT_FALSE(e.Child(0).ToGridRect().Contains(r) ||
                   e.Child(1).ToGridRect().Contains(r))
          << r.ToString() << " " << e.ToString();
    }
  }
}

TEST(ZKey, RoundTrip) {
  Random rng(16);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t gbits = 16;
    const uint32_t level = static_cast<uint32_t>(rng.Uniform(33));
    const uint64_t z = rng.Next() & 0xffffffffULL;
    const uint64_t zmin =
        (level == 0) ? 0 : (z & (~0ULL << (32 - level)));
    const ZElement e(zmin, static_cast<uint8_t>(level),
                     static_cast<uint8_t>(gbits));
    const ObjectId oid = static_cast<ObjectId>(rng.Next());
    const std::string key = EncodeZKey(e, oid);
    ASSERT_EQ(key.size(), kZKeySize);
    ZElement back;
    ObjectId boid;
    ASSERT_TRUE(DecodeZKey(Slice(key), gbits, &back, &boid));
    ASSERT_EQ(back, e);
    ASSERT_EQ(boid, oid);
  }
}

TEST(ZKey, RejectsMalformed) {
  ZElement e;
  ObjectId oid;
  EXPECT_FALSE(DecodeZKey(Slice("short"), 16, &e, &oid));
  std::string bad = EncodeZKey(ZElement::Root(16), 1);
  bad[8] = 60;  // level > 2 * gbits
  EXPECT_FALSE(DecodeZKey(Slice(bad), 16, &e, &oid));
}

TEST(ZKey, ByteOrderMatchesCanonicalOrder) {
  Random rng(17);
  std::vector<ZElement> elems;
  for (int i = 0; i < 300; ++i) {
    const uint32_t level = static_cast<uint32_t>(rng.Uniform(33));
    const uint64_t z = rng.Next() & 0xffffffffULL;
    elems.emplace_back((level == 0) ? 0 : (z & (~0ULL << (32 - level))),
                       static_cast<uint8_t>(level), 16);
  }
  for (size_t i = 0; i < elems.size(); ++i) {
    for (size_t j = 0; j < elems.size(); ++j) {
      const std::string ka = EncodeZKey(elems[i], 5);
      const std::string kb = EncodeZKey(elems[j], 5);
      const bool canonical = elems[i] < elems[j];
      const bool bytes = Slice(ka).compare(Slice(kb)) < 0;
      ASSERT_EQ(canonical, bytes);
    }
  }
}

TEST(ZKey, ScanAndProbeBrackets) {
  const ZElement e(0x40, 2, 4);  // quarter of an 8-bit z space
  const std::string lo = ZScanStartKey(e);
  const std::string hi = ZScanEndKey(e);
  // Every element with zmin inside [0x40, 0x7f] encodes between them.
  for (uint64_t z = 0x40; z <= 0x7f; ++z) {
    const std::string k = EncodeZKey(ZElement(z, 8, 4), 77);
    ASSERT_LE(Slice(lo).compare(Slice(k)), 0);
    ASSERT_GE(Slice(hi).compare(Slice(k)), 0);
  }
  // Elements outside do not.
  EXPECT_GT(Slice(lo).compare(Slice(EncodeZKey(ZElement(0x3f, 8, 4), 0))),
            0);
  EXPECT_LT(Slice(hi).compare(Slice(EncodeZKey(ZElement(0x80, 8, 4), 0))),
            0);
  // Probe keys bracket exactly one element's oid range.
  const std::string plo = ZProbeStartKey(e);
  const std::string phi = ZProbeEndKey(e);
  ASSERT_LT(Slice(plo).compare(Slice(EncodeZKey(e, 123))), 0);
  ASSERT_GT(Slice(phi).compare(Slice(EncodeZKey(e, 123))), 0);
  // A deeper element at the same zmin is outside the probe bracket.
  EXPECT_LT(Slice(phi).compare(Slice(EncodeZKey(ZElement(0x40, 3, 4), 0))),
            0);
}

TEST(BigMin, MatchesBruteForce) {
  const uint32_t gbits = 4;  // 16x16 grid, 256 codes
  Random rng(18);
  for (int trial = 0; trial < 1000; ++trial) {
    GridCoord x1 = static_cast<GridCoord>(rng.Uniform(16));
    GridCoord x2 = static_cast<GridCoord>(rng.Uniform(16));
    GridCoord y1 = static_cast<GridCoord>(rng.Uniform(16));
    GridCoord y2 = static_cast<GridCoord>(rng.Uniform(16));
    const GridRect rect{std::min(x1, x2), std::min(y1, y2),
                        std::max(x1, x2), std::max(y1, y2)};
    const uint64_t z = rng.Uniform(256);

    std::optional<uint64_t> expect;
    for (uint64_t c = z + 1; c < 256; ++c) {
      if (ZCodeInRect(c, rect, gbits)) {
        expect = c;
        break;
      }
    }
    const auto got = BigMin(z, rect, gbits);
    ASSERT_EQ(got, expect) << "z=" << z << " rect=" << rect.ToString();
  }
}

TEST(BigMin, FullAndSingleCellRects) {
  const GridRect all{0, 0, 15, 15};
  EXPECT_EQ(BigMin(0, all, 4), 1u);
  EXPECT_EQ(BigMin(254, all, 4), 255u);
  EXPECT_EQ(BigMin(255, all, 4), std::nullopt);

  const GridRect cell{7, 3, 7, 3};
  const uint64_t cz = MortonEncode(7, 3, 4);
  EXPECT_EQ(BigMin(0, cell, 4), (cz > 0 ? std::optional<uint64_t>(cz)
                                        : std::nullopt));
  EXPECT_EQ(BigMin(cz, cell, 4), std::nullopt);
}

}  // namespace
}  // namespace zdb
