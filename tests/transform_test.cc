// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Transformation technique: 4-D Morton codes, element algebra, box
// decomposition, and query equivalence of the TransformIndex against
// brute force.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "storage/pager.h"
#include "transform/transform_index.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

TEST(Morton4, RoundTripProperty) {
  Random rng(71);
  for (int i = 0; i < 5000; ++i) {
    uint16_t c[4], back[4];
    for (auto& v : c) v = static_cast<uint16_t>(rng.Next());
    const uint64_t z = Morton4Encode(c[0], c[1], c[2], c[3]);
    Morton4Decode(z, back);
    for (int d = 0; d < 4; ++d) ASSERT_EQ(back[d], c[d]);
  }
}

TEST(Morton4, SpreadCollectInverse) {
  Random rng(72);
  for (int i = 0; i < 2000; ++i) {
    const uint16_t v = static_cast<uint16_t>(rng.Next());
    ASSERT_EQ(CollectBits4(SpreadBits4(v)), v);
  }
}

TEST(Element4, RootAndChildren) {
  const ZElement4 root = ZElement4::Root();
  EXPECT_EQ(root.zmax(), ~0ULL);
  const Box4 all = root.ToBox();
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(all.lo[d], 0);
    EXPECT_EQ(all.hi[d], 0xffff);
  }
  // The first split halves dimension 3 (the top code bit).
  const Box4 c0 = root.Child(0).ToBox();
  const Box4 c1 = root.Child(1).ToBox();
  EXPECT_EQ(c0.hi[3], 0x7fff);
  EXPECT_EQ(c1.lo[3], 0x8000);
  EXPECT_EQ(c0.hi[0], 0xffff);  // other dims untouched
}

TEST(Element4, BoxMatchesIntervalProperty) {
  // Walk random paths; at each step the element's box volume must equal
  // its z-interval size, and children must partition the parent.
  Random rng(73);
  for (int trial = 0; trial < 500; ++trial) {
    ZElement4 e = ZElement4::Root();
    while (!e.is_full_resolution() && rng.Bernoulli(0.9)) {
      const ZElement4 child = e.Child(static_cast<int>(rng.Uniform(2)));
      ASSERT_EQ(child.ToBox().Volume(), child.interval_size());
      ASSERT_TRUE(e.ToBox().Contains(child.ToBox()));
      ASSERT_EQ(e.Child(0).zmax() + 1, e.Child(1).zmin);
      e = child;
    }
  }
}

TEST(Decompose4, CoversBoxDisjointly) {
  Random rng(74);
  for (int trial = 0; trial < 100; ++trial) {
    Box4 box;
    for (int d = 0; d < 4; ++d) {
      uint16_t a = static_cast<uint16_t>(rng.Next());
      uint16_t b = static_cast<uint16_t>(rng.Next());
      box.lo[d] = std::min(a, b);
      box.hi[d] = std::max(a, b);
    }
    const auto elements = DecomposeBox4(box, 32);
    ASSERT_LE(elements.size(), 32u);
    ASSERT_FALSE(elements.empty());
    unsigned __int128 covered = 0;
    for (size_t i = 0; i < elements.size(); ++i) {
      if (i > 0) {
        ASSERT_GT(elements[i].zmin, elements[i - 1].zmax());
      }
      covered += elements[i].ToBox().IntersectionVolume(box);
    }
    // Disjoint elements covering the whole box: intersection volumes sum
    // to exactly the box volume.
    ASSERT_EQ(covered, box.Volume());
  }
}

TEST(TransformIndex, WindowAndPointMatchBruteForce) {
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformLarge;
  const auto data = GenerateData(600, dg);

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  auto index = TransformIndex::Create(&pool, TransformIndexOptions{}).value();
  for (const Rect& r : data) ASSERT_TRUE(index->Insert(r).ok());

  for (const Rect& w : GenerateWindows(25, 0.01, QueryGenOptions{})) {
    auto got = index->WindowQuery(w).value();
    std::vector<ObjectId> expect;
    for (size_t i = 0; i < data.size(); ++i) {
      if (data[i].Intersects(w)) expect.push_back(static_cast<ObjectId>(i));
    }
    ASSERT_EQ(got, expect) << w.ToString();

    auto got_c = index->ContainmentQuery(w).value();
    std::vector<ObjectId> expect_c;
    for (size_t i = 0; i < data.size(); ++i) {
      if (w.Contains(data[i])) expect_c.push_back(static_cast<ObjectId>(i));
    }
    ASSERT_EQ(got_c, expect_c);
  }

  for (const Point& p : GeneratePoints(40, 75)) {
    auto got = index->PointQuery(p).value();
    std::vector<ObjectId> expect;
    for (size_t i = 0; i < data.size(); ++i) {
      if (data[i].Contains(p)) expect.push_back(static_cast<ObjectId>(i));
    }
    ASSERT_EQ(got, expect);
  }
}

TEST(TransformIndex, OneEntryPerObjectAndErase) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  auto index = TransformIndex::Create(&pool, TransformIndexOptions{}).value();

  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  const auto data = GenerateData(300, dg);
  for (const Rect& r : data) ASSERT_TRUE(index->Insert(r).ok());
  // The transformation's structural property: exactly one entry each.
  EXPECT_EQ(index->btree()->size(), data.size());

  for (ObjectId oid = 0; oid < 150; ++oid) {
    ASSERT_TRUE(index->Erase(oid).ok());
  }
  EXPECT_TRUE(index->Erase(0).IsNotFound());
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());

  auto got = index->WindowQuery(Rect{0, 0, 1, 1}).value();
  std::vector<ObjectId> expect;
  for (ObjectId oid = 150; oid < 300; ++oid) expect.push_back(oid);
  EXPECT_EQ(got, expect);
}

TEST(TransformIndex, QueryStatsAreCoherent) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  TransformIndexOptions opt;
  opt.query_elements = 16;
  auto index = TransformIndex::Create(&pool, opt).value();
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  for (const Rect& r : GenerateData(500, dg)) {
    ASSERT_TRUE(index->Insert(r).ok());
  }
  QueryStats qs;
  auto hits = index->WindowQuery(Rect{0.3, 0.3, 0.5, 0.5}, &qs).value();
  EXPECT_LE(qs.query_elements, 16u);
  EXPECT_GE(qs.index_entries, qs.candidates);
  EXPECT_EQ(qs.unique_candidates, qs.candidates);  // no duplicates ever
  EXPECT_EQ(qs.results, hits.size());
  EXPECT_EQ(qs.unique_candidates, qs.results + qs.false_hits);
}

}  // namespace
}  // namespace zdb
