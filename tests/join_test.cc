// Copyright (c) zdb authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/spatial_index.h"
#include "storage/pager.h"
#include "workload/datagen.h"

namespace zdb {
namespace {

struct JoinFixture {
  JoinFixture() : pager(Pager::OpenInMemory(512)), pool(pager.get(), 64) {}

  std::unique_ptr<SpatialIndex> Make(const DecomposeOptions& policy) {
    SpatialIndexOptions opt;
    opt.data = policy;
    return SpatialIndex::Create(&pool, opt).value();
  }

  std::unique_ptr<Pager> pager;
  BufferPool pool;
};

std::vector<std::pair<ObjectId, ObjectId>> NestedLoop(
    const std::vector<Rect>& a, const std::vector<Rect>& b) {
  std::vector<std::pair<ObjectId, ObjectId>> out;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      if (a[i].Intersects(b[j])) {
        out.emplace_back(static_cast<ObjectId>(i),
                         static_cast<ObjectId>(j));
      }
    }
  }
  return out;
}

TEST(SpatialJoin, EmptyInputs) {
  JoinFixture f;
  auto a = f.Make(DecomposeOptions::SizeBound(4));
  auto b = f.Make(DecomposeOptions::SizeBound(4));
  EXPECT_TRUE(SpatialJoin(a.get(), b.get()).value().empty());

  ASSERT_TRUE(a->Insert(Rect{0.1, 0.1, 0.2, 0.2}).ok());
  EXPECT_TRUE(SpatialJoin(a.get(), b.get()).value().empty());
  EXPECT_TRUE(SpatialJoin(b.get(), a.get()).value().empty());
}

TEST(SpatialJoin, MismatchedConfigsRejected) {
  JoinFixture f;
  auto a = f.Make(DecomposeOptions::SizeBound(4));
  SpatialIndexOptions opt;
  opt.grid_bits = 12;
  auto b = SpatialIndex::Create(&f.pool, opt).value();
  EXPECT_TRUE(
      SpatialJoin(a.get(), b.get()).status().IsInvalidArgument());
}

TEST(SpatialJoin, AsymmetricPolicies) {
  // Layers may use different redundancy; correctness must hold.
  JoinFixture f;
  auto a = f.Make(DecomposeOptions::SizeBound(1));
  auto b = f.Make(DecomposeOptions::ErrorBound(0.05));

  DataGenOptions dg;
  dg.distribution = Distribution::kUniformLarge;
  dg.seed = 31;
  const auto data_a = GenerateData(200, dg);
  dg.seed = 32;
  const auto data_b = GenerateData(200, dg);
  for (const Rect& r : data_a) ASSERT_TRUE(a->Insert(r).ok());
  for (const Rect& r : data_b) ASSERT_TRUE(b->Insert(r).ok());

  auto got = SpatialJoin(a.get(), b.get()).value();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, NestedLoop(data_a, data_b));
}

TEST(SpatialJoin, SelfJoinOfIdenticalLayers) {
  JoinFixture f;
  auto a = f.Make(DecomposeOptions::SizeBound(4));
  auto b = f.Make(DecomposeOptions::SizeBound(4));
  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  const auto data = GenerateData(150, dg);
  for (const Rect& r : data) {
    ASSERT_TRUE(a->Insert(r).ok());
    ASSERT_TRUE(b->Insert(r).ok());
  }
  auto got = SpatialJoin(a.get(), b.get()).value();
  // Every object intersects its twin, so the diagonal is present.
  std::sort(got.begin(), got.end());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(std::binary_search(
        got.begin(), got.end(),
        std::make_pair(static_cast<ObjectId>(i), static_cast<ObjectId>(i))));
  }
  EXPECT_EQ(got, NestedLoop(data, data));
}

TEST(SpatialJoin, ErasedObjectsDropOut) {
  JoinFixture f;
  auto a = f.Make(DecomposeOptions::SizeBound(4));
  auto b = f.Make(DecomposeOptions::SizeBound(4));
  ASSERT_TRUE(a->Insert(Rect{0.1, 0.1, 0.3, 0.3}).ok());
  ASSERT_TRUE(a->Insert(Rect{0.6, 0.6, 0.8, 0.8}).ok());
  ASSERT_TRUE(b->Insert(Rect{0.2, 0.2, 0.7, 0.7}).ok());

  auto before = SpatialJoin(a.get(), b.get()).value();
  EXPECT_EQ(before.size(), 2u);
  ASSERT_TRUE(a->Erase(0).ok());
  auto after = SpatialJoin(a.get(), b.get()).value();
  EXPECT_EQ(after,
            (std::vector<std::pair<ObjectId, ObjectId>>{{1, 0}}));
}

TEST(SpatialJoin, StatsIdentities) {
  JoinFixture f;
  auto a = f.Make(DecomposeOptions::SizeBound(4));
  auto b = f.Make(DecomposeOptions::SizeBound(4));
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformLarge;
  dg.seed = 41;
  const auto data_a = GenerateData(250, dg);
  dg.seed = 42;
  const auto data_b = GenerateData(250, dg);
  for (const Rect& r : data_a) ASSERT_TRUE(a->Insert(r).ok());
  for (const Rect& r : data_b) ASSERT_TRUE(b->Insert(r).ok());

  JoinStats js;
  auto got = SpatialJoin(a.get(), b.get(), &js).value();
  EXPECT_EQ(js.results, got.size());
  EXPECT_GE(js.candidate_pairs, js.unique_pairs);
  EXPECT_EQ(js.unique_pairs, js.results + js.false_pairs);
  EXPECT_EQ(js.entries_scanned,
            a->btree()->size() + b->btree()->size());
}

}  // namespace
}  // namespace zdb
