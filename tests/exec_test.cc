// Copyright (c) zdb authors. Licensed under the MIT license.
//
// QueryExecutor correctness: batch execution and intra-query parallelism
// must return exactly what the serial SpatialIndex calls return, across
// thread counts and index modes (plain, store_mbr_in_leaf, BIGMIN), and
// the per-worker counters must add up.

#include "exec/executor.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

struct ExecFixture {
  explicit ExecFixture(SpatialIndexOptions opt = MakeOptions(), size_t n = 800,
                       size_t pool_pages = 512)
      : pager(Pager::OpenInMemory(512)), pool(pager.get(), pool_pages) {
    index = SpatialIndex::Create(&pool, opt).value();
    DataGenOptions dg;
    dg.distribution = Distribution::kClusters;
    for (const Rect& r : GenerateData(n, dg)) {
      EXPECT_TRUE(index->Insert(r).ok());
    }
  }

  static SpatialIndexOptions MakeOptions() {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(4);
    return opt;
  }

  std::unique_ptr<Pager> pager;
  BufferPool pool;
  std::unique_ptr<SpatialIndex> index;
};

TEST(QueryExecutor, WindowBatchMatchesSerial) {
  ExecFixture f;
  const auto windows = GenerateWindows(40, 0.02, QueryGenOptions{});
  std::vector<std::vector<ObjectId>> expected;
  for (const auto& w : windows) {
    expected.push_back(f.index->WindowQuery(w).value());
  }
  for (size_t threads : {1u, 2u, 4u}) {
    QueryExecutor exec(f.index.get(), threads);
    auto got = exec.WindowBatch(windows).value();
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "window " << i << " at " << threads
                                     << " threads";
    }
  }
}

TEST(QueryExecutor, PointBatchMatchesSerial) {
  ExecFixture f;
  const auto points = GeneratePoints(60, 3);
  std::vector<std::vector<ObjectId>> expected;
  for (const auto& p : points) {
    expected.push_back(f.index->PointQuery(p).value());
  }
  QueryExecutor exec(f.index.get(), 4);
  auto got = exec.PointBatch(points).value();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "point " << i;
  }
}

TEST(QueryExecutor, NearestBatchMatchesSerial) {
  ExecFixture f;
  const auto points = GeneratePoints(20, 5);
  std::vector<std::vector<std::pair<ObjectId, double>>> expected;
  for (const auto& p : points) {
    expected.push_back(f.index->NearestNeighbors(p, 5).value());
  }
  QueryExecutor exec(f.index.get(), 3);
  auto got = exec.NearestBatch(points, 5).value();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "knn " << i;
  }
}

TEST(QueryExecutor, ParallelWindowQueryMatchesSerial) {
  ExecFixture f;
  const auto windows = GenerateWindows(10, 0.1, QueryGenOptions{.seed = 11});
  for (size_t threads : {1u, 2u, 4u, 7u}) {
    QueryExecutor exec(f.index.get(), threads);
    for (const auto& w : windows) {
      QueryStats serial_stats, par_stats;
      auto expected = f.index->WindowQuery(w, &serial_stats).value();
      auto got = exec.ParallelWindowQuery(w, &par_stats).value();
      EXPECT_EQ(got, expected) << "at " << threads << " threads";
      EXPECT_EQ(par_stats.results, expected.size());
      EXPECT_EQ(par_stats.unique_candidates, serial_stats.unique_candidates);
    }
  }
}

TEST(QueryExecutor, ParallelWindowQueryLeafMbrMode) {
  SpatialIndexOptions opt = ExecFixture::MakeOptions();
  opt.store_mbr_in_leaf = true;
  ExecFixture f(opt);
  QueryExecutor exec(f.index.get(), 4);
  for (const auto& w : GenerateWindows(10, 0.05, QueryGenOptions{})) {
    auto expected = f.index->WindowQuery(w).value();
    EXPECT_EQ(exec.ParallelWindowQuery(w).value(), expected);
  }
}

TEST(QueryExecutor, ParallelWindowQueryBigminMode) {
  SpatialIndexOptions opt = ExecFixture::MakeOptions();
  opt.use_bigmin = true;
  ExecFixture f(opt);
  QueryExecutor exec(f.index.get(), 4);
  for (const auto& w : GenerateWindows(10, 0.05, QueryGenOptions{})) {
    auto expected = f.index->WindowQuery(w).value();
    EXPECT_EQ(exec.ParallelWindowQuery(w).value(), expected);
  }
}

TEST(QueryExecutor, EmptyBatchesAndEmptyIndex) {
  ExecFixture f(ExecFixture::MakeOptions(), 0);
  QueryExecutor exec(f.index.get(), 2);
  EXPECT_TRUE(exec.WindowBatch({}).value().empty());
  EXPECT_TRUE(exec.PointBatch({}).value().empty());
  auto got = exec.WindowBatch({Rect{0, 0, 1, 1}}).value();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].empty());
  EXPECT_TRUE(exec.ParallelWindowQuery(Rect{0, 0, 1, 1}).value().empty());
}

TEST(QueryExecutor, PropagatesQueryErrors) {
  ExecFixture f;
  QueryExecutor exec(f.index.get(), 2);
  const Rect bad{0.5, 0.5, 0.4, 0.6};  // xlo > xhi
  EXPECT_TRUE(exec.WindowBatch({Rect{0, 0, 1, 1}, bad})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(exec.ParallelWindowQuery(bad).status().IsInvalidArgument());
  // The executor survives a failed batch and keeps answering.
  EXPECT_FALSE(exec.WindowBatch({Rect{0, 0, 1, 1}}).value().empty());
}

TEST(QueryExecutor, PerWorkerStatsAggregate) {
  ExecFixture f;
  const auto windows = GenerateWindows(32, 0.02, QueryGenOptions{});
  QueryExecutor exec(f.index.get(), 4);
  exec.ResetStats();
  auto results = exec.WindowBatch(windows).value();
  size_t total_results = 0;
  for (const auto& r : results) total_results += r.size();

  const ExecStats stats = exec.stats();
  ASSERT_EQ(stats.workers.size(), 4u);
  const WorkerStats totals = stats.Totals();
  EXPECT_EQ(totals.tasks, windows.size());
  EXPECT_EQ(totals.query.results, total_results);
  // Every query pinned at least one page, and every pin was a hit or a
  // miss.
  EXPECT_GE(totals.io.pages_pinned, windows.size());
  EXPECT_EQ(totals.io.pages_pinned, totals.io.pool_hits + totals.io.pool_misses);

  exec.ResetStats();
  EXPECT_EQ(exec.stats().Totals().tasks, 0u);
  EXPECT_EQ(exec.stats().Totals().io.pages_pinned, 0u);
}

TEST(QueryExecutor, PlanSliceUnionCoversWholeQuery) {
  // Any partition of the plan's work items must reproduce the full
  // candidate set — the invariant ParallelWindowQuery builds on.
  ExecFixture f;
  const Rect w{0.1, 0.1, 0.6, 0.55};
  auto plan = f.index->PlanWindow(w).value();
  ASSERT_GT(plan.work_items(), 0u);

  QueryStats qs;
  auto full =
      f.index->ExecuteWindowPlanSlice(plan, 0, plan.work_items(), &qs).value();

  for (size_t pieces : {2u, 3u, 5u}) {
    std::vector<ObjectId> merged;
    const size_t step = (plan.work_items() + pieces - 1) / pieces;
    for (size_t b = 0; b < plan.work_items(); b += step) {
      QueryStats part;
      auto slice =
          f.index
              ->ExecuteWindowPlanSlice(plan, b, b + step, &part)
              .value();
      merged.insert(merged.end(), slice.begin(), slice.end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    EXPECT_EQ(merged, full) << pieces << " pieces";
  }
}

}  // namespace
}  // namespace zdb
