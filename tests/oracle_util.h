// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Shared brute-force oracle plumbing for the concurrency suites
// (stress_mixed_test.cc, snapshot_test.cc). One root seed derives a
// deterministic workload: an initial object set, a sequence of write
// batches (inserts + erases), the exact oracle state after each batch,
// and query sets to replay against any of those states.
//
// Two checking modes:
//   * range checks (Matches*InRange) — for latched concurrent readers,
//     whose answer must equal the oracle at exactly one epoch in the
//     [e0, e1] bracket the reader observed;
//   * exact-state checks (ExpectedWindow/ExpectedPoint/KnnMatchesState)
//     — for epoch-pinned snapshot readers, whose answer must equal the
//     oracle at precisely the pinned epoch, every time it is re-read.

#ifndef ZDB_TESTS_ORACLE_UTIL_H_
#define ZDB_TESTS_ORACLE_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/spatial_index.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace oracle {

/// Live set at one write-batch boundary.
using OracleState = std::map<ObjectId, Rect>;

/// Workload sizing. The defaults match the historical stress_mixed
/// shape; the snapshot suite uses smaller numbers (its oracle is
/// re-evaluated per pinned reader per iteration).
struct WorkloadShape {
  size_t initial_objects = 300;
  size_t batches = 12;
  size_t inserts_per_batch = 24;
  size_t erases_per_batch = 18;
  size_t window_queries = 18;
  size_t point_queries = 12;
  size_t knn_queries = 6;
  size_t knn_k = 5;
};

/// The full deterministic workload: per-epoch oracle states plus the
/// batches that step between them.
struct Workload {
  std::vector<Rect> initial;           ///< objects inserted before epoch 0
  std::vector<WriteBatch> batches;     ///< batches[k]: epoch k -> k+1
  std::vector<std::vector<ObjectId>> batch_oids;  ///< expected insert oids
  std::vector<OracleState> states;     ///< states[k]: after k batches
  std::vector<Rect> windows;
  std::vector<Point> points;
  std::vector<Point> knn_points;
};

inline Workload MakeWorkload(uint64_t seed,
                             const WorkloadShape& shape = {}) {
  Workload w;
  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  dg.seed = seed;
  w.initial = GenerateData(shape.initial_objects, dg);

  OracleState state;
  for (size_t i = 0; i < w.initial.size(); ++i) {
    state[static_cast<ObjectId>(i)] = w.initial[i];
  }
  w.states.push_back(state);

  // Fresh rects for the batch inserts, drawn from a different stream.
  DataGenOptions dg2;
  dg2.distribution = Distribution::kUniformLarge;
  dg2.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  const auto extra =
      GenerateData(shape.batches * shape.inserts_per_batch, dg2);

  Random rng(seed + 1);
  ObjectId next_oid = static_cast<ObjectId>(w.initial.size());
  for (size_t b = 0; b < shape.batches; ++b) {
    WriteBatch batch;
    std::vector<ObjectId> oids;
    // Erase a random sample of the currently live objects...
    std::vector<ObjectId> live;
    live.reserve(state.size());
    for (const auto& [oid, rect] : state) live.push_back(oid);
    for (size_t e = 0; e < shape.erases_per_batch && !live.empty(); ++e) {
      const size_t pick = rng.Uniform(live.size());
      batch.Erase(live[pick]);
      state.erase(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    // ...and insert fresh ones. Oids are deterministic: the object store
    // assigns them densely in insertion order and the single writer
    // applies batches in sequence.
    for (size_t i = 0; i < shape.inserts_per_batch; ++i) {
      const Rect& r = extra[b * shape.inserts_per_batch + i];
      batch.Insert(r);
      state[next_oid] = r;
      oids.push_back(next_oid);
      ++next_oid;
    }
    w.batches.push_back(std::move(batch));
    w.batch_oids.push_back(std::move(oids));
    w.states.push_back(state);
  }

  QueryGenOptions qopt;
  qopt.seed = seed + 2;
  qopt.aspect_jitter = 0.5;
  w.windows = GenerateWindows(shape.window_queries, 0.01, qopt);
  const auto big =
      GenerateWindows(4, 0.08, QueryGenOptions{.seed = seed + 3});
  w.windows.insert(w.windows.end(), big.begin(), big.end());
  w.points = GeneratePoints(shape.point_queries, seed + 4);
  w.knn_points = GeneratePoints(shape.knn_queries, seed + 5);
  return w;
}

inline std::vector<ObjectId> ExpectedWindow(const OracleState& st,
                                            const Rect& w) {
  std::vector<ObjectId> out;
  for (const auto& [oid, rect] : st) {
    if (rect.Intersects(w)) out.push_back(oid);
  }
  return out;
}

inline std::vector<ObjectId> ExpectedPoint(const OracleState& st,
                                           const Point& p) {
  std::vector<ObjectId> out;
  for (const auto& [oid, rect] : st) {
    if (rect.Contains(p)) out.push_back(oid);
  }
  return out;
}

/// True if `got` (sorted by oid) equals the brute-force window answer at
/// some single epoch in [e0, e1].
inline bool MatchesWindowInRange(const std::vector<OracleState>& states,
                                 const Rect& w,
                                 const std::vector<ObjectId>& got,
                                 uint64_t e0, uint64_t e1) {
  for (uint64_t k = e0; k <= e1 && k < states.size(); ++k) {
    if (got == ExpectedWindow(states[k], w)) return true;
  }
  return false;
}

inline bool MatchesPointInRange(const std::vector<OracleState>& states,
                                const Point& p,
                                const std::vector<ObjectId>& got,
                                uint64_t e0, uint64_t e1) {
  for (uint64_t k = e0; k <= e1 && k < states.size(); ++k) {
    if (got == ExpectedPoint(states[k], p)) return true;
  }
  return false;
}

/// True if a kNN answer is exactly the brute-force answer at state `st`:
/// right size, every returned object live with its exact distance,
/// ascending order, and no bypassed closer object. Tie-tolerant: equal
/// distances may order either way.
inline bool KnnMatchesState(
    const OracleState& st, const Point& p, size_t k,
    const std::vector<std::pair<ObjectId, double>>& got) {
  constexpr double kEps = 1e-9;
  if (got.size() != std::min(k, st.size())) return false;
  double prev = -1.0;
  for (const auto& [oid, dist] : got) {
    auto it = st.find(oid);
    if (it == st.end()) return false;  // dead object returned
    if (std::abs(it->second.DistanceTo(p) - dist) > kEps) return false;
    if (dist + kEps < prev) return false;  // not ascending
    prev = dist;
  }
  // No live object outside the answer may be strictly closer than the
  // farthest returned one.
  if (!got.empty()) {
    const double worst = got.back().second;
    std::vector<ObjectId> returned;
    for (const auto& [oid, dist] : got) returned.push_back(oid);
    std::sort(returned.begin(), returned.end());
    for (const auto& [oid, rect] : st) {
      if (std::binary_search(returned.begin(), returned.end(), oid)) {
        continue;
      }
      if (rect.DistanceTo(p) + kEps < worst) return false;
    }
  }
  return true;
}

inline bool MatchesKnnInRange(
    const std::vector<OracleState>& states, const Point& p, size_t k,
    const std::vector<std::pair<ObjectId, double>>& got, uint64_t e0,
    uint64_t e1) {
  for (uint64_t s = e0; s <= e1 && s < states.size(); ++s) {
    if (KnnMatchesState(states[s], p, k, got)) return true;
  }
  return false;
}

}  // namespace oracle
}  // namespace zdb

#endif  // ZDB_TESTS_ORACLE_UTIL_H_
