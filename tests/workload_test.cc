// Copyright (c) zdb authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

TEST(DataGen, AllDistributionsProduceValidUnitSquareRects) {
  for (Distribution d : kAllDistributions) {
    DataGenOptions opt;
    opt.distribution = d;
    const auto data = GenerateData(2000, opt);
    ASSERT_EQ(data.size(), 2000u) << DistributionName(d);
    for (const Rect& r : data) {
      ASSERT_TRUE(r.valid()) << DistributionName(d);
      ASSERT_GE(r.xlo, 0.0);
      ASSERT_GE(r.ylo, 0.0);
      ASSERT_LT(r.xhi, 1.0);
      ASSERT_LT(r.yhi, 1.0);
    }
  }
}

TEST(DataGen, DeterministicInSeed) {
  DataGenOptions a, b;
  a.distribution = b.distribution = Distribution::kClusters;
  a.seed = b.seed = 99;
  EXPECT_EQ(GenerateData(500, a), GenerateData(500, b));
  b.seed = 100;
  EXPECT_NE(GenerateData(500, a), GenerateData(500, b));
}

TEST(DataGen, DistributionShapes) {
  // Diagonal: centers near the main diagonal.
  DataGenOptions dg;
  dg.distribution = Distribution::kDiagonal;
  for (const Rect& r : GenerateData(1000, dg)) {
    const Point c = r.center();
    ASSERT_NEAR(c.x, c.y, 0.12);
  }
  // Uniform-small objects are small.
  dg.distribution = Distribution::kUniformSmall;
  for (const Rect& r : GenerateData(1000, dg)) {
    ASSERT_LE(r.width(), 0.011);
    ASSERT_LE(r.height(), 0.011);
  }
  // Skewed sizes: some objects are much larger than the median.
  dg.distribution = Distribution::kSkewedSizes;
  const auto skewed = GenerateData(5000, dg);
  double max_w = 0;
  size_t tiny = 0;
  for (const Rect& r : skewed) {
    max_w = std::max(max_w, r.width());
    if (r.width() < 0.002) ++tiny;
  }
  EXPECT_GT(max_w, 0.02);
  EXPECT_GT(tiny, skewed.size() / 2);
}

TEST(DataGen, DistributionNamesAreUnique) {
  std::set<std::string> names;
  for (Distribution d : kAllDistributions) {
    EXPECT_TRUE(names.insert(DistributionName(d)).second);
  }
}

TEST(QueryGen, WindowSelectivity) {
  const auto windows = GenerateWindows(200, 0.01, QueryGenOptions{});
  ASSERT_EQ(windows.size(), 200u);
  for (const Rect& w : windows) {
    ASSERT_TRUE(w.valid());
    ASSERT_GE(w.xlo, 0.0);
    ASSERT_LT(w.yhi, 1.0);
    // Area is the target selectivity, up to boundary clipping.
    ASSERT_LE(w.area(), 0.0101);
  }
  // Interior windows hit the target area exactly.
  size_t interior_exact = 0;
  for (const Rect& w : windows) {
    if (w.xlo > 0 && w.ylo > 0 && w.xhi < 0.99 && w.yhi < 0.99 &&
        std::abs(w.area() - 0.01) < 1e-9) {
      ++interior_exact;
    }
  }
  EXPECT_GT(interior_exact, 100u);
}

TEST(QueryGen, AspectJitterPreservesArea) {
  QueryGenOptions opt;
  opt.aspect_jitter = 0.5;
  const auto windows = GenerateWindows(100, 0.01, opt);
  bool varied = false;
  for (const Rect& w : windows) {
    if (w.xlo > 0 && w.ylo > 0 && w.xhi < 0.99 && w.yhi < 0.99) {
      ASSERT_NEAR(w.area(), 0.01, 1e-9);
      if (std::abs(w.width() - w.height()) > 1e-6) varied = true;
    }
  }
  EXPECT_TRUE(varied);
}

TEST(QueryGen, PointsInUnitSquare) {
  const auto points = GeneratePoints(500, 1);
  ASSERT_EQ(points.size(), 500u);
  for (const Point& p : points) {
    ASSERT_GE(p.x, 0.0);
    ASSERT_LT(p.x, 1.0);
    ASSERT_GE(p.y, 0.0);
    ASSERT_LT(p.y, 1.0);
  }
  EXPECT_EQ(GeneratePoints(10, 5), GeneratePoints(10, 5));
}

}  // namespace
}  // namespace zdb
