// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Failure injection: a file that starts failing after a countdown. Every
// layer above must propagate the IOError as a Status — never crash,
// never corrupt already-acknowledged state into silently wrong answers.

#include <gtest/gtest.h>

#include <memory>

#include "btree/btree.h"
#include "common/random.h"
#include "core/spatial_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "workload/datagen.h"

namespace zdb {
namespace {

/// Delegating file that fails all I/O after `budget` operations.
class FailingFile : public File {
 public:
  explicit FailingFile(int64_t budget)
      : inner_(std::make_unique<MemFile>()), budget_(budget) {}

  Status Read(uint64_t offset, size_t n, char* buf) const override {
    if (Spend()) return Status::IOError("injected read failure");
    return inner_->Read(offset, n, buf);
  }
  Status Write(uint64_t offset, const char* data, size_t n) override {
    if (Spend()) return Status::IOError("injected write failure");
    return inner_->Write(offset, data, n);
  }
  uint64_t Size() const override { return inner_->Size(); }
  Status Truncate(uint64_t size) override {
    if (Spend()) return Status::IOError("injected truncate failure");
    return inner_->Truncate(size);
  }

  /// Re-arms or disables the failure countdown without touching data.
  void set_budget(int64_t b) { budget_ = b; }

  Status Sync() override {
    if (Spend()) return Status::IOError("injected sync failure");
    return inner_->Sync();
  }

 private:
  bool Spend() const {
    if (budget_ < 0) return false;  // disabled
    if (budget_ == 0) return true;
    --budget_;
    return false;
  }

  std::unique_ptr<MemFile> inner_;
  mutable int64_t budget_;
};

TEST(FailureInjection, BTreeInsertsSurfaceIOErrors) {
  // Sweep the failure point across the build; every outcome must be a
  // clean Status, and successful prefixes must stay readable via the
  // pool (which still holds the pages in memory).
  for (int64_t budget : {0, 1, 3, 10, 50, 200}) {
    auto file = std::make_unique<FailingFile>(budget);
    auto pager_r = Pager::Open(std::move(file), 512);
    if (!pager_r.ok()) {
      EXPECT_TRUE(pager_r.status().IsIOError());
      continue;
    }
    auto pager = std::move(pager_r).value();
    // Tiny pool forces evictions (and thus real I/O) during the build.
    BufferPool pool(pager.get(), 4);
    auto tree_r = BTree::Create(&pool);
    if (!tree_r.ok()) continue;
    auto& tree = *tree_r.value();

    bool failed = false;
    Random rng(static_cast<uint64_t>(budget) + 1);
    for (int i = 0; i < 500 && !failed; ++i) {
      // Random keys scatter across leaves, churning the tiny pool so the
      // countdown is actually consumed.
      char key[16];
      std::snprintf(key, sizeof(key), "k%08llx",
                    static_cast<unsigned long long>(rng.Next() & 0xffffffff));
      Status s = tree.Insert(key, "value");
      if (!s.ok()) {
        EXPECT_TRUE(s.IsIOError()) << s.ToString();
        failed = true;
      }
    }
    if (budget <= 50) {
      EXPECT_TRUE(failed) << "budget " << budget;
    }
  }
}

TEST(FailureInjection, QueriesSurfaceIOErrors) {
  auto file = std::make_unique<FailingFile>(-1);  // start healthy
  FailingFile* raw = file.get();
  auto pager = Pager::Open(std::move(file), 512).value();
  BufferPool pool(pager.get(), 4);
  SpatialIndexOptions opt;
  auto index = SpatialIndex::Create(&pool, opt).value();

  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  for (const Rect& r : GenerateData(500, dg)) {
    ASSERT_TRUE(index->Insert(r).ok());
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.Clear().ok());

  // Now kill the disk: a cold query must fail with IOError, not crash.
  raw->set_budget(0);
  auto r = index->WindowQuery(Rect{0.2, 0.2, 0.6, 0.6});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError()) << r.status().ToString();

  // Disk recovers: the same query succeeds.
  raw->set_budget(-1);
  EXPECT_TRUE(index->WindowQuery(Rect{0.2, 0.2, 0.6, 0.6}).ok());
}

TEST(FailureInjection, PoolReportsWriteBackFailures) {
  auto file = std::make_unique<FailingFile>(-1);
  FailingFile* raw = file.get();
  auto pager = Pager::Open(std::move(file), 512).value();
  BufferPool pool(pager.get(), 2);

  // Dirty two pages, then make writes fail: FlushAll must error.
  {
    auto a = pool.New().value();
    a.mutable_data()[0] = 1;
    auto b = pool.New().value();
    b.mutable_data()[0] = 2;
  }
  raw->set_budget(0);
  Status s = pool.FlushAll();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  raw->set_budget(-1);
  EXPECT_TRUE(pool.FlushAll().ok());
}

}  // namespace
}  // namespace zdb
