// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Replication suites (labelled `repl`; suite names Repl* so the TSan CI
// leg's regex picks them up):
//
//   ReplRecord    — log-record / opcode codec round-trips and corruption
//   ReplStaleness — the WithinStaleness bound arithmetic
//   ReplShipper   — LogShipper cursors, windowing, retention, truncation
//   ReplEndToEnd  — leader + follower over real sockets: byte-identical
//                   answers at every shipped epoch (brute-force oracle),
//                   kill-and-resubscribe without gaps or duplicates,
//                   NOT_LEADER redirects, bounded-staleness honesty.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "client/client.h"
#include "repl/apply.h"
#include "repl/record.h"
#include "repl/ship.h"
#include "server/server.h"
#include "oracle_util.h"
#include "zdb/db.h"

namespace zdb {
namespace {

using net::Client;
using net::ClientOptions;
using net::ReadPreference;
using net::Server;
using net::ServerOptions;
using net::ServerRole;

// ------------------------------------------------------------ ReplRecord

WriteBatch MakeBatch() {
  WriteBatch b;
  WriteOp ins;
  ins.kind = WriteOp::Kind::kInsert;
  ins.mbr = Rect{0.1, 0.2, 0.3, 0.4};
  ins.payload = 7;
  ins.preassigned = 42;
  b.ops.push_back(ins);
  WriteOp era;
  era.kind = WriteOp::Kind::kErase;
  era.oid = 9;
  b.ops.push_back(era);
  return b;
}

TEST(ReplRecord, RoundTrip) {
  repl::LogRecord rec;
  rec.epoch = 1234;
  rec.batch = MakeBatch();
  const std::string wire = repl::EncodeLogRecord(rec);

  repl::LogRecord out;
  ASSERT_TRUE(repl::DecodeLogRecord(wire, &out));
  EXPECT_EQ(out.epoch, 1234u);
  ASSERT_EQ(out.batch.ops.size(), 2u);
  EXPECT_EQ(out.batch.ops[0].kind, WriteOp::Kind::kInsert);
  EXPECT_EQ(out.batch.ops[0].preassigned, 42u);
  EXPECT_EQ(out.batch.ops[0].payload, 7u);
  EXPECT_EQ(out.batch.ops[0].mbr.xlo, 0.1);
  EXPECT_EQ(out.batch.ops[1].kind, WriteOp::Kind::kErase);
  EXPECT_EQ(out.batch.ops[1].oid, 9u);
}

TEST(ReplRecord, EveryFlippedByteIsDetected) {
  repl::LogRecord rec;
  rec.epoch = 77;
  rec.batch = MakeBatch();
  const std::string wire = repl::EncodeLogRecord(rec);
  for (size_t i = 0; i < wire.size(); ++i) {
    std::string bad = wire;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    repl::LogRecord out;
    // A flip in the epoch/ops bytes fails the checksum; a flip in the
    // checksum bytes fails the compare; a flip in the count either
    // fails bounds or the checksum. Nothing decodes silently.
    EXPECT_FALSE(repl::DecodeLogRecord(bad, &out)) << "byte " << i;
  }
}

TEST(ReplRecord, TruncationAndTrailingBytesRejected) {
  repl::LogRecord rec;
  rec.epoch = 5;
  rec.batch = MakeBatch();
  const std::string wire = repl::EncodeLogRecord(rec);
  repl::LogRecord out;
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(repl::DecodeLogRecord(wire.substr(0, cut), &out));
  }
  EXPECT_FALSE(repl::DecodeLogRecord(wire + "x", &out));
}

TEST(ReplRecord, OpcodePayloadCodecs) {
  uint64_t v = 0;
  ASSERT_TRUE(
      repl::DecodeSubscribeRequest(repl::EncodeSubscribeRequest(31), &v));
  EXPECT_EQ(v, 31u);
  ASSERT_TRUE(repl::DecodeLogAck(repl::EncodeLogAck(17), &v));
  EXPECT_EQ(v, 17u);

  // The subscribe reply is a full reply payload: status byte + body.
  const std::string reply = repl::EncodeSubscribeReply(99);
  std::string_view body;
  std::string message;
  ASSERT_EQ(net::ParseReplyStatus(reply, &body, &message),
            net::WireError::kOk);
  ASSERT_TRUE(repl::DecodeSubscribeReplyBody(body, &v));
  EXPECT_EQ(v, 99u);

  repl::LogRecord rec;
  rec.epoch = 3;
  rec.batch = MakeBatch();
  const std::string frame =
      repl::EncodeLogRecordFrame(11, repl::EncodeLogRecord(rec));
  repl::LogRecord out;
  ASSERT_TRUE(repl::DecodeLogRecordFrame(frame, &v, &out));
  EXPECT_EQ(v, 11u);
  EXPECT_EQ(out.epoch, 3u);
}

// --------------------------------------------------------- ReplStaleness

TEST(ReplStaleness, UnboundedAlwaysWithin) {
  EXPECT_TRUE(repl::WithinStaleness(100, 0, false, net::kNoStalenessBound));
  EXPECT_TRUE(repl::WithinStaleness(0, 0, true, net::kNoStalenessBound));
}

TEST(ReplStaleness, DisconnectedNeverWithinABound) {
  // A disconnected follower cannot know its lag — any finite bound must
  // reject rather than guess.
  EXPECT_FALSE(repl::WithinStaleness(5, 5, false, 1000));
  EXPECT_FALSE(repl::WithinStaleness(0, 0, false, 0));
}

TEST(ReplStaleness, LagArithmetic) {
  EXPECT_TRUE(repl::WithinStaleness(10, 10, true, 0));   // caught up
  EXPECT_FALSE(repl::WithinStaleness(11, 10, true, 0));  // 1 behind
  EXPECT_TRUE(repl::WithinStaleness(11, 10, true, 1));
  EXPECT_TRUE(repl::WithinStaleness(15, 10, true, 5));
  EXPECT_FALSE(repl::WithinStaleness(16, 10, true, 5));
  // Applied ahead of the last-heard leader epoch (stale leader info
  // mid-stream): lag clamps to zero, never underflows.
  EXPECT_TRUE(repl::WithinStaleness(9, 10, true, 0));
}

// ----------------------------------------------------------- ReplShipper

/// Collects shipped frames; decodes them back to (epoch, record epoch).
struct FrameSink {
  std::mutex mu;
  std::vector<repl::LogRecord> records;
  std::vector<uint64_t> heads;

  repl::LogShipper::SendFn Fn() {
    return [this](std::string frame) {
      // Strip the 20-byte wire header, decode the LOG_RECORD payload.
      net::FrameAssembler fa;
      fa.Feed(frame.data(), frame.size());
      net::Frame f;
      net::WireError err;
      net::FrameHeader eh;
      ASSERT_EQ(fa.Poll(&f, &err, &eh), net::FrameAssembler::Next::kFrame);
      uint64_t head = 0;
      repl::LogRecord rec;
      ASSERT_TRUE(repl::DecodeLogRecordFrame(f.payload, &head, &rec));
      std::lock_guard<std::mutex> lock(mu);
      heads.push_back(head);
      records.push_back(std::move(rec));
    };
  }

  size_t Count() {
    std::lock_guard<std::mutex> lock(mu);
    return records.size();
  }
};

void AwaitCount(FrameSink* sink, size_t n) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sink->Count() < n) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "shipper never delivered " << n << " records";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ReplShipper, ShipsCommitsInOrderFromTheSubscribedCursor) {
  repl::LogShipper shipper(/*attach_epoch=*/0, {});
  shipper.Start();
  for (uint64_t e = 1; e <= 3; ++e) {
    WriteBatch b = MakeBatch();
    shipper.OnCommit(e, b);
  }
  // Appends happen on the ship thread; wait until the log head reflects
  // all three commits before claiming a resume point inside it.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (shipper.Snapshot().records_appended < 3) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  FrameSink sink;
  auto head = shipper.Subscribe(/*token=*/1, /*last_applied=*/1, sink.Fn());
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  shipper.Activate(1);
  AwaitCount(&sink, 2);  // epochs 2 and 3; epoch 1 already applied
  {
    std::lock_guard<std::mutex> lock(sink.mu);
    ASSERT_EQ(sink.records.size(), 2u);
    EXPECT_EQ(sink.records[0].epoch, 2u);
    EXPECT_EQ(sink.records[1].epoch, 3u);
    // The piggybacked head epoch is current at send time.
    EXPECT_GE(sink.heads[0], 2u);
  }
  shipper.OnCommit(4, MakeBatch());
  AwaitCount(&sink, 3);
  shipper.Stop();
}

TEST(ReplShipper, WindowBlocksUntilAcked) {
  repl::ShipperOptions opt;
  opt.window = 1;
  repl::LogShipper shipper(0, opt);
  shipper.Start();
  FrameSink sink;
  ASSERT_TRUE(shipper.Subscribe(1, 0, sink.Fn()).ok());
  shipper.Activate(1);
  shipper.OnCommit(1, MakeBatch());
  shipper.OnCommit(2, MakeBatch());
  AwaitCount(&sink, 1);
  // Window of one: the second record must not ship before the ack.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(sink.Count(), 1u);
  shipper.Ack(1, 1);
  AwaitCount(&sink, 2);
  {
    std::lock_guard<std::mutex> lock(sink.mu);
    EXPECT_EQ(sink.records[1].epoch, 2u);
  }
  shipper.Stop();
}

TEST(ReplShipper, SubscribeOutsideTheLogIsTyped) {
  repl::LogShipper shipper(/*attach_epoch=*/10, {});
  shipper.Start();
  FrameSink sink;
  // Below the floor: history before the attach epoch was never logged.
  auto below = shipper.Subscribe(1, 3, sink.Fn());
  ASSERT_FALSE(below.ok());
  EXPECT_TRUE(below.status().IsNotFound()) << below.status().ToString();
  // Ahead of the head: the follower claims epochs that don't exist.
  auto ahead = shipper.Subscribe(2, 11, sink.Fn());
  ASSERT_FALSE(ahead.ok());
  EXPECT_TRUE(ahead.status().IsInvalidArgument());
  // Exactly at the floor/head boundary is fine.
  EXPECT_TRUE(shipper.Subscribe(3, 10, sink.Fn()).ok());
  shipper.Stop();
}

TEST(ReplShipper, RetentionAdvancesTheFloor) {
  repl::ShipperOptions opt;
  opt.retain_records = 2;
  repl::LogShipper shipper(0, opt);
  shipper.Start();
  for (uint64_t e = 1; e <= 6; ++e) shipper.OnCommit(e, MakeBatch());
  // Wait until the ring has absorbed and evicted.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (shipper.Snapshot().records_appended < 6) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const repl::ShipperStats s = shipper.Snapshot();
  EXPECT_EQ(s.retained, 2u);
  EXPECT_EQ(s.floor_epoch, 4u);  // epochs 1..4 evicted
  EXPECT_EQ(s.records_evicted, 4u);
  // A resume point inside the evicted range is a typed resync demand.
  FrameSink sink;
  auto r = shipper.Subscribe(1, 2, sink.Fn());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  shipper.Stop();
}

// ----------------------------------------------------------- ReplEndToEnd

struct Node {
  std::unique_ptr<DB> db;
  std::unique_ptr<Server> server;
  std::string uri;

  Node(ServerRole role, const std::string& leader_uri,
       size_t retain_records = 0) {
    DBOptions dopt;
    dopt.index.data = DecomposeOptions::SizeBound(8);
    dopt.memory_journal = true;
    auto db_r = DB::Open("", dopt);
    EXPECT_TRUE(db_r.ok()) << db_r.status().ToString();
    db = std::move(db_r).value();
    ServerOptions sopt;
    sopt.port = 0;
    sopt.workers = 2;
    sopt.idle_timeout_ms = 0;
    sopt.role = role;
    sopt.leader_endpoint = leader_uri;
    sopt.repl_retain_records = retain_records;
    server = std::make_unique<Server>(db.get(), sopt);
    const Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
    uri = "tcp://127.0.0.1:" + std::to_string(server->port());
  }
};

void AwaitEpoch(const DB& db, uint64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (db.write_epoch() < target) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "replica stuck at epoch " << db.write_epoch() << " of "
        << target;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

Client ConnectTo(const std::string& uri, ClientOptions opt = {}) {
  auto c = Client::Connect(uri, std::move(opt));
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  return std::move(c).value();
}

TEST(ReplEndToEnd, FollowerByteIdenticalAtEveryShippedEpoch) {
  Node leader(ServerRole::kLeader, "");
  Node follower(ServerRole::kFollower, leader.uri);
  Client lc = ConnectTo(leader.uri);
  Client fc = ConnectTo(follower.uri);

  oracle::WorkloadShape shape;
  shape.initial_objects = 200;
  shape.batches = 8;
  const oracle::Workload w = oracle::MakeWorkload(0xE17E2E, shape);

  // Epoch 1: the initial object set as one batch.
  {
    WriteBatch batch;
    for (const Rect& r : w.initial) batch.Insert(r);
    auto r = lc.Apply(batch);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // One leader commit per oracle batch; after each ships, the follower
  // must answer every query byte-identically to the oracle state at
  // that epoch — same ids, same order (ascending, like the engine).
  for (size_t b = 0; b < w.batches.size(); ++b) {
    auto r = lc.Apply(w.batches[b]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r.value().inserted, w.batch_oids[b]) << "batch " << b;
    AwaitEpoch(*follower.db, leader.db->write_epoch());

    const oracle::OracleState& st = w.states[b + 1];
    for (const Rect& win : w.windows) {
      auto got = fc.Window(win);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      std::vector<ObjectId> ids = got.value().ids;
      std::sort(ids.begin(), ids.end());
      EXPECT_EQ(ids, oracle::ExpectedWindow(st, win)) << "batch " << b;
    }
    for (const Point& p : w.points) {
      auto got = fc.Point(p);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      std::vector<ObjectId> ids = got.value().ids;
      std::sort(ids.begin(), ids.end());
      EXPECT_EQ(ids, oracle::ExpectedPoint(st, p)) << "batch " << b;
    }
  }

  // Follower answers must also be byte-identical to the leader's —
  // leader-assigned oids replayed verbatim, same traversal order.
  for (const Rect& win : w.windows) {
    auto a = lc.Window(win);
    auto b = fc.Window(win);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().ids, b.value().ids);
  }
}

TEST(ReplEndToEnd, KillAndResubscribeNoGapsNoDuplicates) {
  Node leader(ServerRole::kLeader, "");
  Client lc = ConnectTo(leader.uri);

  // The follower here is a bare DB + Applier so the test can stop and
  // restart the subscription the way a crashed follower process would.
  DBOptions dopt;
  dopt.index.data = DecomposeOptions::SizeBound(8);
  dopt.memory_journal = true;
  auto fdb = DB::Open("", dopt).value();

  oracle::WorkloadShape shape;
  shape.initial_objects = 100;
  shape.batches = 6;
  const oracle::Workload w = oracle::MakeWorkload(0xE17DEAD, shape);
  {
    WriteBatch batch;
    for (const Rect& r : w.initial) batch.Insert(r);
    ASSERT_TRUE(lc.Apply(batch).ok());
  }

  repl::ApplierOptions aopt;
  aopt.leader_endpoint = leader.uri;
  uint64_t applied_at_kill = 0;
  {
    repl::Applier applier(fdb.get(), aopt);
    ASSERT_TRUE(applier.Start().ok());
    for (size_t b = 0; b < 3; ++b) ASSERT_TRUE(lc.Apply(w.batches[b]).ok());
    AwaitEpoch(*fdb, leader.db->write_epoch());
    applier.Stop();  // "crash": half the stream applied
    applied_at_kill = applier.applied_epoch();
  }
  ASSERT_EQ(applied_at_kill, leader.db->write_epoch());

  // The leader keeps committing while the follower is down.
  for (size_t b = 3; b < w.batches.size(); ++b) {
    ASSERT_TRUE(lc.Apply(w.batches[b]).ok());
  }

  // Restart, resuming from the persisted-equivalent epoch. The applier
  // must receive exactly the missed suffix: no duplicates (the DB would
  // reject re-inserting live preassigned oids), no gaps (the oracle
  // compare below would fail).
  repl::ApplierOptions resume = aopt;
  resume.initial_applied_epoch = applied_at_kill;
  repl::Applier applier(fdb.get(), resume);
  ASSERT_TRUE(applier.Start().ok());
  AwaitEpoch(*fdb, leader.db->write_epoch());
  // The DB's write epoch advances inside ApplyReplicated, a beat before
  // the applier publishes its own watermark — wait for the applier's
  // applied_epoch (which orders its counters) before sampling stats.
  {
    const uint64_t target = leader.db->write_epoch();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (applier.applied_epoch() < target) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "applier watermark stuck at " << applier.applied_epoch();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const repl::ApplierStats st = applier.Snapshot();
  EXPECT_EQ(st.records_applied,
            leader.db->write_epoch() - applied_at_kill);
  EXPECT_EQ(st.duplicates_skipped, 0u);
  EXPECT_EQ(st.stream_errors, 0u);
  applier.Stop();

  const oracle::OracleState& final_state = w.states.back();
  for (const Rect& win : w.windows) {
    auto got = fdb->Window(win);
    ASSERT_TRUE(got.ok());
    std::vector<ObjectId> ids = got.value();
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, oracle::ExpectedWindow(final_state, win));
  }
}

TEST(ReplEndToEnd, TruncatedLogDemandsResync) {
  // Tiny retention ring: by the time the follower attaches, the epochs
  // it wants are gone and the subscribe must be a typed rejection, not
  // a silent gap.
  Node leader(ServerRole::kLeader, "", /*retain_records=*/2);
  Client lc = ConnectTo(leader.uri);
  for (int b = 0; b < 8; ++b) {
    WriteBatch batch;
    batch.Insert(Rect{0.1 * b, 0.1, 0.1 * b + 0.05, 0.2});
    ASSERT_TRUE(lc.Apply(batch).ok());
  }

  DBOptions dopt;
  dopt.index.data = DecomposeOptions::SizeBound(8);
  dopt.memory_journal = true;
  auto fdb = DB::Open("", dopt).value();
  repl::ApplierOptions aopt;
  aopt.leader_endpoint = leader.uri;
  aopt.reconnect_min_ms = 10;
  repl::Applier applier(fdb.get(), aopt);  // last applied 0 < floor
  ASSERT_TRUE(applier.Start().ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (applier.Snapshot().subscribe_rejects == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(applier.connected());
  EXPECT_EQ(fdb->write_epoch(), 0u);  // nothing partial was applied
  applier.Stop();
}

TEST(ReplEndToEnd, WritesAgainstAFollowerRedirect) {
  Node leader(ServerRole::kLeader, "");
  Node follower(ServerRole::kFollower, leader.uri);
  Client c = ConnectTo(follower.uri);
  WriteBatch batch;
  batch.Insert(Rect{0.4, 0.4, 0.5, 0.5});
  auto r = c.Apply(batch);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(c.endpoint(), leader.uri);  // transparently moved
  AwaitEpoch(*follower.db, leader.db->write_epoch());
  EXPECT_EQ(follower.db->object_count(), 1u);
}

TEST(ReplEndToEnd, BoundedStalenessIsHonest) {
  Node leader(ServerRole::kLeader, "");
  Node follower(ServerRole::kFollower, leader.uri);
  // A follower whose leader will never answer: parseable endpoint,
  // nothing listening. Its applier can never connect, so any finite
  // staleness bound must be rejected.
  Node orphan(ServerRole::kFollower, "tcp://127.0.0.1:1");

  Client lc = ConnectTo(leader.uri);
  WriteBatch batch;
  batch.Insert(Rect{0.2, 0.2, 0.3, 0.3});
  ASSERT_TRUE(lc.Apply(batch).ok());
  AwaitEpoch(*follower.db, leader.db->write_epoch());

  const Rect win{0.0, 0.0, 1.0, 1.0};

  // Caught-up follower, loose bound: served by the follower.
  {
    ClientOptions copt;
    copt.read_preference = ReadPreference::kBoundedStaleness;
    copt.max_lag_epochs = 1000;
    copt.followers = {follower.uri};
    Client c = ConnectTo(leader.uri, copt);
    auto r = c.Window(win);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().ids.size(), 1u);
  }

  // Disconnected follower, any bound: the follower answers STALE_READ
  // and the client transparently falls back to the leader.
  {
    ClientOptions copt;
    copt.read_preference = ReadPreference::kBoundedStaleness;
    copt.max_lag_epochs = 1000;
    copt.followers = {orphan.uri};
    Client c = ConnectTo(leader.uri, copt);
    auto r = c.Window(win);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().ids.size(), 1u);
    // The orphan rejected honestly (visible in its counters).
    Client oc = ConnectTo(orphan.uri);
    auto stats = oc.Stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_NE(stats.value().find("\"stale_rejected\":1"),
              std::string::npos)
        << stats.value();
  }

  // An unbounded read against the disconnected follower still works —
  // staleness is opt-in.
  {
    Client c = ConnectTo(orphan.uri);
    auto r = c.Window(win);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().ids.empty());  // orphan never applied anything
  }
}

}  // namespace
}  // namespace zdb
