// Copyright (c) zdb authors. Licensed under the MIT license.
//
// SpatialIndex behaviours beyond the brute-force equivalence sweeps in
// property_test.cc: statistics accounting, erase cycles, edge-case
// geometry, and option validation.

#include "core/spatial_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

struct IndexFixture {
  explicit IndexFixture(SpatialIndexOptions opt = {}, uint32_t page = 512,
                        size_t pool_pages = 64)
      : pager(Pager::OpenInMemory(page)), pool(pager.get(), pool_pages) {
    index = SpatialIndex::Create(&pool, opt).value();
  }
  std::unique_ptr<Pager> pager;
  BufferPool pool;
  std::unique_ptr<SpatialIndex> index;
};

TEST(SpatialIndex, RejectsBadOptions) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 8);
  SpatialIndexOptions opt;
  opt.grid_bits = 0;
  EXPECT_FALSE(SpatialIndex::Create(&pool, opt).ok());
  opt.grid_bits = 40;
  EXPECT_FALSE(SpatialIndex::Create(&pool, opt).ok());
}

TEST(SpatialIndex, RejectsInvalidMbr) {
  IndexFixture f;
  EXPECT_TRUE(
      f.index->Insert(Rect{0.5, 0.5, 0.4, 0.6}).status().IsInvalidArgument());
}

TEST(SpatialIndex, EmptyIndexQueries) {
  IndexFixture f;
  EXPECT_TRUE(f.index->WindowQuery(Rect{0, 0, 1, 1}).value().empty());
  EXPECT_TRUE(f.index->PointQuery(Point{0.5, 0.5}).value().empty());
  EXPECT_TRUE(f.index->Erase(0).IsNotFound());
}

TEST(SpatialIndex, StatsAccounting) {
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  IndexFixture f(opt);
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformLarge;
  const auto data = GenerateData(500, dg);
  for (const Rect& r : data) ASSERT_TRUE(f.index->Insert(r).ok());

  EXPECT_EQ(f.index->build_stats().objects, 500u);
  EXPECT_GE(f.index->build_stats().redundancy(), 1.0);
  EXPECT_LE(f.index->build_stats().redundancy(), 4.0);
  EXPECT_EQ(f.index->btree()->size(),
            f.index->build_stats().index_entries);

  QueryStats qs;
  const Rect w{0.2, 0.2, 0.5, 0.5};
  auto hits = f.index->WindowQuery(w, &qs).value();
  // Counter identities.
  EXPECT_GE(qs.candidates, qs.unique_candidates);
  EXPECT_EQ(qs.results, hits.size());
  EXPECT_EQ(qs.unique_candidates, qs.results + qs.false_hits);
  EXPECT_GE(qs.index_entries, qs.candidates);
  EXPECT_GT(qs.query_elements, 0u);
}

TEST(SpatialIndex, LevelMaskTracksInsertedLevels) {
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(1);
  IndexFixture f(opt);
  EXPECT_EQ(f.index->level_mask(), 0u);
  // A full-space object lands at level 0.
  ASSERT_TRUE(f.index->Insert(Rect{0.0, 0.0, 0.999, 0.999}).ok());
  EXPECT_TRUE(f.index->level_mask() & 1ULL);
  // A tiny object lands deep.
  ASSERT_TRUE(f.index->Insert(Rect{0.25, 0.25, 0.2500001, 0.2500001}).ok());
  EXPECT_GT(f.index->level_mask(), 1ULL);
}

TEST(SpatialIndex, LevelHistogramMatchesMaskAndCount) {
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(8);
  IndexFixture f(opt);
  DataGenOptions dg;
  dg.distribution = Distribution::kSkewedSizes;
  const auto data = GenerateData(400, dg);
  for (const Rect& r : data) ASSERT_TRUE(f.index->Insert(r).ok());

  const auto hist = f.index->LevelHistogram().value();
  ASSERT_EQ(hist.size(), 2u * f.index->options().grid_bits + 1);
  uint64_t total = 0;
  for (size_t lvl = 0; lvl < hist.size(); ++lvl) {
    total += hist[lvl];
    if (hist[lvl] > 0) {
      EXPECT_TRUE(f.index->level_mask() & (1ULL << lvl)) << lvl;
    }
  }
  EXPECT_EQ(total, f.index->btree()->size());
}

TEST(SpatialIndex, InsertEraseCyclesStayConsistent) {
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  IndexFixture f(opt);
  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  const auto data = GenerateData(300, dg);

  std::vector<ObjectId> live;
  for (int cycle = 0; cycle < 3; ++cycle) {
    live.clear();
    for (const Rect& r : data) live.push_back(f.index->Insert(r).value());
    ASSERT_TRUE(f.index->btree()->CheckInvariants().ok());
    for (ObjectId oid : live) ASSERT_TRUE(f.index->Erase(oid).ok());
    ASSERT_TRUE(f.index->btree()->CheckInvariants().ok());
    EXPECT_EQ(f.index->object_count(), 0u);
    EXPECT_EQ(f.index->btree()->size(), 0u);
    EXPECT_TRUE(f.index->WindowQuery(Rect{0, 0, 1, 1}).value().empty());
  }
}

TEST(SpatialIndex, DuplicateGeometryGetsDistinctIds) {
  IndexFixture f;
  const Rect r{0.3, 0.3, 0.4, 0.4};
  const ObjectId a = f.index->Insert(r).value();
  const ObjectId b = f.index->Insert(r).value();
  EXPECT_NE(a, b);
  auto hits = f.index->WindowQuery(r).value();
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<ObjectId>{a, b}));
  ASSERT_TRUE(f.index->Erase(a).ok());
  EXPECT_EQ(f.index->WindowQuery(r).value(), std::vector<ObjectId>{b});
}

TEST(SpatialIndex, PointLikeObjects) {
  IndexFixture f;
  const Rect point_obj{0.5, 0.5, 0.5, 0.5};
  const ObjectId oid = f.index->Insert(point_obj).value();
  EXPECT_EQ(f.index->PointQuery(Point{0.5, 0.5}).value(),
            std::vector<ObjectId>{oid});
  EXPECT_EQ(f.index->WindowQuery(Rect{0.4, 0.4, 0.6, 0.6}).value(),
            std::vector<ObjectId>{oid});
  EXPECT_TRUE(f.index->PointQuery(Point{0.51, 0.5}).value().empty());
}

TEST(SpatialIndex, ObjectsStraddlingTheCenter) {
  // The classic k=1 pathology: an object crossing the midline has the
  // whole space as its single element; redundancy fixes the false hits.
  SpatialIndexOptions opt1;
  opt1.data = DecomposeOptions::SizeBound(1);
  IndexFixture f1(opt1);
  SpatialIndexOptions opt8;
  opt8.data = DecomposeOptions::SizeBound(8);
  IndexFixture f8(opt8);

  const Rect straddler{0.49, 0.49, 0.51, 0.51};
  for (auto* f : {&f1, &f8}) {
    ASSERT_TRUE(f->index->Insert(straddler).ok());
  }
  // A faraway query: k=1 must still consider the straddler (false hit),
  // k=8 must not.
  const Rect far{0.9, 0.9, 0.95, 0.95};
  QueryStats qs1, qs8;
  EXPECT_TRUE(f1.index->WindowQuery(far, &qs1).value().empty());
  EXPECT_TRUE(f8.index->WindowQuery(far, &qs8).value().empty());
  EXPECT_EQ(qs1.false_hits, 1u);
  EXPECT_EQ(qs8.false_hits, 0u);
}

TEST(SpatialIndex, ContainmentAndEnclosureQueries) {
  IndexFixture f;
  const ObjectId small = f.index->Insert(Rect{0.4, 0.4, 0.45, 0.45}).value();
  const ObjectId big = f.index->Insert(Rect{0.1, 0.1, 0.9, 0.9}).value();
  const ObjectId out = f.index->Insert(Rect{0.05, 0.7, 0.5, 0.8}).value();
  (void)out;

  const Rect w{0.3, 0.3, 0.6, 0.6};
  EXPECT_EQ(f.index->ContainmentQuery(w).value(),
            std::vector<ObjectId>{small});
  EXPECT_EQ(f.index->EnclosureQuery(w).value(), std::vector<ObjectId>{big});
}

TEST(SpatialIndex, WorksAtCoarseGridResolutions) {
  for (uint32_t bits : {4u, 8u, 12u}) {
    SpatialIndexOptions opt;
    opt.grid_bits = bits;
    opt.data = DecomposeOptions::SizeBound(4);
    IndexFixture f(opt);
    DataGenOptions dg;
    dg.distribution = Distribution::kUniformLarge;
    const auto data = GenerateData(200, dg);
    for (const Rect& r : data) ASSERT_TRUE(f.index->Insert(r).ok());

    const auto windows = GenerateWindows(10, 0.01, QueryGenOptions{});
    for (const Rect& w : windows) {
      auto got = f.index->WindowQuery(w).value();
      std::sort(got.begin(), got.end());
      std::vector<ObjectId> expect;
      for (size_t i = 0; i < data.size(); ++i) {
        if (data[i].Intersects(w)) expect.push_back(static_cast<ObjectId>(i));
      }
      ASSERT_EQ(got, expect) << "bits=" << bits;
    }
  }
}

TEST(SpatialIndex, CustomWorldBounds) {
  SpatialIndexOptions opt;
  opt.world = Rect{-1000, -1000, 1000, 1000};
  IndexFixture f(opt);
  const ObjectId a = f.index->Insert(Rect{-500, -500, -400, -400}).value();
  const ObjectId b = f.index->Insert(Rect{300, 700, 350, 750}).value();
  EXPECT_EQ(f.index->WindowQuery(Rect{-600, -600, -450, -450}).value(),
            std::vector<ObjectId>{a});
  EXPECT_EQ(f.index->PointQuery(Point{320, 720}).value(),
            std::vector<ObjectId>{b});
}

}  // namespace
}  // namespace zdb
