// Copyright (c) zdb authors. Licensed under the MIT license.
//
// End-to-end smoke: spatial index queries must equal brute-force scans on
// random data, across decomposition policies and the ablation modes.

#include <gtest/gtest.h>

#include <algorithm>

#include "bench_util/runner.h"
#include "core/spatial_index.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

std::vector<ObjectId> BruteWindow(const std::vector<Rect>& data,
                                  const Rect& w) {
  std::vector<ObjectId> out;
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].Intersects(w)) out.push_back(static_cast<ObjectId>(i));
  }
  return out;
}

TEST(CoreSmoke, WindowQueriesMatchBruteForce) {
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformLarge;
  const auto data = GenerateData(800, dg);

  for (bool leaf_mbr : {false, true}) {
    for (bool bigmin : {false, true}) {
      Env env = MakeEnv(512, 64);
      SpatialIndexOptions opt;
      opt.data = DecomposeOptions::SizeBound(4);
      opt.store_mbr_in_leaf = leaf_mbr;
      opt.use_bigmin = bigmin;
      auto index_r = BuildZIndex(&env, data, opt);
      ASSERT_TRUE(index_r.ok()) << index_r.status().ToString();
      auto& index = *index_r.value();

      const auto windows = GenerateWindows(30, 0.01, QueryGenOptions{});
      for (const Rect& w : windows) {
        auto got_r = index.WindowQuery(w);
        ASSERT_TRUE(got_r.ok()) << got_r.status().ToString();
        auto got = got_r.value();
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, BruteWindow(data, w))
            << "leaf_mbr=" << leaf_mbr << " bigmin=" << bigmin
            << " window=" << w.ToString();
      }
    }
  }
}

TEST(CoreSmoke, PointQueriesMatchBruteForce) {
  DataGenOptions dg;
  dg.distribution = Distribution::kSkewedSizes;
  const auto data = GenerateData(600, dg);

  Env env = MakeEnv(512, 64);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::ErrorBound(0.2);
  auto index = BuildZIndex(&env, data, opt).value();

  const auto points = GeneratePoints(50, 99);
  for (const Point& p : points) {
    auto got = index->PointQuery(p).value();
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> expect;
    for (size_t i = 0; i < data.size(); ++i) {
      if (data[i].Contains(p)) expect.push_back(static_cast<ObjectId>(i));
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(CoreSmoke, JoinMatchesNestedLoop) {
  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  dg.seed = 3;
  const auto data_a = GenerateData(300, dg);
  dg.seed = 4;
  const auto data_b = GenerateData(300, dg);

  Env env = MakeEnv(512, 64);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto a = BuildZIndex(&env, data_a, opt).value();
  auto b = BuildZIndex(&env, data_b, opt).value();

  auto got_r = SpatialJoin(a.get(), b.get());
  ASSERT_TRUE(got_r.ok()) << got_r.status().ToString();
  auto got = got_r.value();
  std::sort(got.begin(), got.end());

  std::vector<std::pair<ObjectId, ObjectId>> expect;
  for (size_t i = 0; i < data_a.size(); ++i) {
    for (size_t j = 0; j < data_b.size(); ++j) {
      if (data_a[i].Intersects(data_b[j])) {
        expect.emplace_back(static_cast<ObjectId>(i),
                            static_cast<ObjectId>(j));
      }
    }
  }
  EXPECT_EQ(got, expect);
}

TEST(CoreSmoke, RTreeMatchesBruteForce) {
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformLarge;
  const auto data = GenerateData(700, dg);

  for (auto split :
       {RTreeOptions::Split::kQuadratic, RTreeOptions::Split::kLinear}) {
    Env env = MakeEnv(512, 64);
    RTreeOptions opt;
    opt.split = split;
    auto tree = BuildRTree(&env, data, opt).value();
    ASSERT_TRUE(tree->CheckInvariants().ok());

    const auto windows = GenerateWindows(30, 0.02, QueryGenOptions{});
    for (const Rect& w : windows) {
      auto got = tree->WindowQuery(w).value();
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, BruteWindow(data, w));
    }
  }
}

TEST(CoreSmoke, EraseRemovesObjects) {
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  const auto data = GenerateData(400, dg);

  Env env = MakeEnv(512, 64);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(8);
  auto index = BuildZIndex(&env, data, opt).value();

  // Erase every third object.
  std::vector<bool> alive(data.size(), true);
  for (size_t i = 0; i < data.size(); i += 3) {
    ASSERT_TRUE(index->Erase(static_cast<ObjectId>(i)).ok());
    alive[i] = false;
  }
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());

  const Rect everything{0, 0, 1, 1};
  auto got = index->WindowQuery(everything).value();
  std::sort(got.begin(), got.end());
  std::vector<ObjectId> expect;
  for (size_t i = 0; i < data.size(); ++i) {
    if (alive[i]) expect.push_back(static_cast<ObjectId>(i));
  }
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace zdb
