// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Sharded engine partitions (src/shard/): z-prefix routing exactness,
// scatter-gather queries vs the brute-force oracle at every epoch,
// N=1 vs N=4 byte-identical answers (router-assigned oids match the
// single-engine append cursor), boundary-straddling replication, the
// on-disk manifest + reopen recovery, the sharded executor, and a small
// concurrent churn suite (the TSan leg runs this file at N=4).
//
// Suites are named Shard* so the sanitizer matrix regex
// `thread.(...|Shard)` picks every suite in this file up.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "exec/executor.h"
#include "shard/manifest.h"
#include "shard/routing.h"
#include "oracle_util.h"
#include "zdb/db.h"

namespace zdb {
namespace {

using oracle::ExpectedPoint;
using oracle::ExpectedWindow;
using oracle::KnnMatchesState;
using oracle::MakeWorkload;
using oracle::OracleState;
using oracle::Workload;
using oracle::WorkloadShape;

/// A file-backed sharded DB leaves `path` (the manifest), the per-shard
/// files and every journal behind; remove them all.
struct TempShardedFile {
  TempShardedFile() {
    char tmpl[] = "/tmp/zdb_shard_XXXXXX";
    int fd = ::mkstemp(tmpl);
    EXPECT_GE(fd, 0);
    ::close(fd);
    path = tmpl;
  }
  ~TempShardedFile() {
    std::remove(path.c_str());
    std::remove((path + "-journal").c_str());
    for (uint32_t s = 0; s < shard::kMaxShards; ++s) {
      const std::string sp = shard::ShardFilePath(path, s);
      std::remove(sp.c_str());
      std::remove((sp + "-journal").c_str());
    }
  }
  std::string path;
};

DBOptions MemShardOptions(uint32_t shards) {
  DBOptions opt;
  opt.memory_journal = true;  // run the per-shard group-commit pipelines
  opt.shards = shards;
  return opt;
}

// ----------------------------------------------------------------- routing

TEST(ShardRouting, PrefixRegionsPartitionTheGrid) {
  const Rect world{0.0, 0.0, 1.0, 1.0};
  for (uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
    shard::ShardRouting routing(shards, world, /*grid_bits=*/6);
    // Every sampled cell center routes to exactly one shard, and the
    // cell's singleton rect masks to exactly that shard's bit.
    const SpaceMapper& m = routing.mapper();
    for (uint32_t gx = 0; gx < 64; gx += 3) {
      for (uint32_t gy = 0; gy < 64; gy += 3) {
        const uint32_t s = routing.ShardForCell(gx, gy);
        ASSERT_LT(s, shards);
        const Rect cell = m.ToWorld(GridRect{gx, gy, gx, gy});
        const Point center{(cell.xlo + cell.xhi) / 2,
                           (cell.ylo + cell.yhi) / 2};
        const uint64_t mask =
            routing.MaskForRect(Rect{center.x, center.y, center.x, center.y});
        ASSERT_EQ(mask, uint64_t{1} << s)
            << "cell (" << gx << "," << gy << ") shards=" << shards;
      }
    }
  }
}

TEST(ShardRouting, MasksWidenWithTheRect) {
  const Rect world{0.0, 0.0, 1.0, 1.0};
  shard::ShardRouting routing(4, world, 8);
  // The whole world touches every shard.
  EXPECT_EQ(routing.MaskForRect(world), routing.AllShardsMask());
  EXPECT_EQ(routing.AllShardsMask(), uint64_t{0xF});
  // A rect straddling the world center touches all four top-level
  // quadrant prefixes.
  EXPECT_EQ(routing.MaskForRect(Rect{0.49, 0.49, 0.51, 0.51}),
            routing.AllShardsMask());
  // A tiny corner rect touches exactly one.
  const uint64_t corner = routing.MaskForRect(Rect{0.01, 0.01, 0.02, 0.02});
  EXPECT_EQ(__builtin_popcountll(corner), 1);
}

TEST(ShardRouting, MinDistanceIsZeroInsideOwnedRegions) {
  shard::ShardRouting routing(4, Rect{0.0, 0.0, 1.0, 1.0}, 8);
  const Point p{0.1, 0.1};
  const SpaceMapper& m = routing.mapper();
  const uint32_t owner = routing.ShardForCell(m.ToGridX(p.x), m.ToGridY(p.y));
  EXPECT_EQ(routing.MinDistance(owner, p), 0.0);
  // Some other shard must be strictly farther from a corner point.
  double far = 0.0;
  for (uint32_t s = 0; s < 4; ++s) far = std::max(far, routing.MinDistance(s, p));
  EXPECT_GT(far, 0.0);
}

// ------------------------------------------------------------- open errors

TEST(ShardOpen, RejectsBadShardCounts) {
  DBOptions opt;
  opt.shards = 0;
  EXPECT_TRUE(DB::Open("", opt).status().IsInvalidArgument());
  opt.shards = shard::kMaxShards + 1;
  EXPECT_TRUE(DB::Open("", opt).status().IsInvalidArgument());
}

TEST(ShardOpen, RejectsPreassignedOidsInBatches) {
  auto db = DB::Open("", MemShardOptions(4)).value();
  WriteBatch batch;
  batch.InsertWithOid(Rect{0.1, 0.1, 0.2, 0.2}, 7);
  EXPECT_TRUE(db->Apply(batch).status().IsInvalidArgument());
}

// ------------------------------------------------------------ oracle suite

/// Replays the deterministic mixed workload against an N=4 sharded DB,
/// checking every query type against the brute-force oracle after every
/// batch — quiescent states are exact under the scatter-gather contract.
TEST(ShardOracle, MatchesBruteForceAtEveryEpoch) {
  const Workload w = MakeWorkload(/*seed=*/17);
  auto db = DB::Open("", MemShardOptions(4)).value();

  WriteBatch init;
  for (const Rect& r : w.initial) init.Insert(r);
  auto init_ids = db->Apply(init);
  ASSERT_TRUE(init_ids.ok()) << init_ids.status().ToString();

  for (size_t b = 0; b <= w.batches.size(); ++b) {
    if (b > 0) {
      auto ids = db->Apply(w.batches[b - 1], Durability::kPublished);
      ASSERT_TRUE(ids.ok()) << ids.status().ToString();
      // Router-assigned oids are dense and deterministic: identical to
      // what a single-engine DB would have assigned.
      EXPECT_EQ(ids.value(), w.batch_oids[b - 1]);
    }
    const OracleState& st = w.states[b];
    EXPECT_EQ(db->object_count(), st.size());
    for (const Rect& win : w.windows) {
      auto got = db->Window(win);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), ExpectedWindow(st, win)) << "batch " << b;
    }
    for (const Point& p : w.points) {
      auto got = db->Point(p);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), ExpectedPoint(st, p)) << "batch " << b;
    }
    for (const Point& p : w.knn_points) {
      auto got = db->Nearest(p, 5);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(KnnMatchesState(st, p, 5, got.value())) << "batch " << b;
    }
  }
}

/// N=1 and N=4 DBs fed the same operations must answer every query
/// byte-identically (same oids, same order) — the acceptance bar for
/// the sharded facade.
TEST(ShardOracle, FourShardsAnswerIdenticallyToOne) {
  const Workload w = MakeWorkload(/*seed=*/23);
  auto one = DB::Open("", MemShardOptions(1)).value();
  auto four = DB::Open("", MemShardOptions(4)).value();

  WriteBatch init;
  for (const Rect& r : w.initial) init.Insert(r);
  ASSERT_TRUE(one->Apply(init).ok());
  ASSERT_TRUE(four->Apply(init).ok());

  for (size_t b = 0; b <= w.batches.size(); ++b) {
    if (b > 0) {
      auto r1 = one->Apply(w.batches[b - 1], Durability::kPublished);
      auto r4 = four->Apply(w.batches[b - 1], Durability::kPublished);
      ASSERT_TRUE(r1.ok());
      ASSERT_TRUE(r4.ok());
      EXPECT_EQ(r1.value(), r4.value());
    }
    for (const Rect& win : w.windows) {
      EXPECT_EQ(one->Window(win).value(), four->Window(win).value());
      EXPECT_EQ(one->Containment(win).value(),
                four->Containment(win).value());
    }
    for (const Point& p : w.points) {
      EXPECT_EQ(one->Point(p).value(), four->Point(p).value());
    }
    for (const Point& p : w.knn_points) {
      EXPECT_EQ(one->Nearest(p, 5).value(), four->Nearest(p, 5).value());
    }
  }
  // Same logical content, replicated storage: deduped object counts
  // agree, summed per-shard objects exceed them (replication).
  EXPECT_EQ(one->object_count(), four->object_count());
  uint64_t replicated = 0;
  for (const auto& c : four->ShardStats()) replicated += c.objects;
  EXPECT_GE(replicated, four->object_count());
}

// ---------------------------------------------------- boundary straddling

TEST(ShardBoundary, StraddlingObjectsAreReplicatedAndErasable) {
  auto db = DB::Open("", MemShardOptions(4)).value();
  // The center rect straddles all four top-level quadrants; the corner
  // rects live in exactly one shard each.
  const Rect center{0.45, 0.45, 0.55, 0.55};
  const std::vector<Rect> corners = {{0.1, 0.1, 0.15, 0.15},
                                     {0.8, 0.1, 0.85, 0.15},
                                     {0.1, 0.8, 0.15, 0.85},
                                     {0.8, 0.8, 0.85, 0.85}};
  const ObjectId center_id = db->Insert(center).value();
  std::vector<ObjectId> corner_ids;
  for (const Rect& r : corners) corner_ids.push_back(db->Insert(r).value());

  // The straddler is replicated into every shard...
  uint64_t shard_objects = 0;
  for (const auto& c : db->ShardStats()) {
    EXPECT_GE(c.objects, 1u);
    shard_objects += c.objects;
  }
  EXPECT_EQ(shard_objects, 4u + corners.size());
  // ...but gathers exactly once, from any overlapping window.
  for (const Rect& probe :
       {Rect{0.4, 0.4, 0.6, 0.6}, Rect{0.46, 0.46, 0.47, 0.47},
        Rect{0.0, 0.0, 1.0, 1.0}}) {
    auto hits = db->Window(probe).value();
    EXPECT_EQ(std::count(hits.begin(), hits.end(), center_id), 1)
        << probe.xlo << "," << probe.ylo;
  }
  auto at_center = db->Point(Point{0.5, 0.5}).value();
  EXPECT_EQ(at_center, std::vector<ObjectId>{center_id});

  // Erasing the straddler removes every replica.
  ASSERT_TRUE(db->Erase(center_id).ok());
  EXPECT_TRUE(db->Point(Point{0.5, 0.5}).value().empty());
  EXPECT_EQ(db->object_count(), corners.size());
  EXPECT_TRUE(db->Erase(center_id).IsNotFound());
}

TEST(ShardBoundary, StraddlingPolygonKeepsExactGeometryEverywhere) {
  auto db = DB::Open("", MemShardOptions(4)).value();
  // A triangle crossing the world center: replicated with full rings,
  // so point-in-polygon answers agree from every owning shard.
  const Polygon tri({{0.40, 0.45}, {0.60, 0.45}, {0.50, 0.62}});
  const ObjectId oid = db->InsertPolygon(tri).value();
  EXPECT_EQ(db->Point(Point{0.5, 0.5}).value(), std::vector<ObjectId>{oid});
  // Outside the ring but inside the MBR: refine must reject it in
  // whichever shard serves the point.
  EXPECT_TRUE(db->Point(Point{0.42, 0.60}).value().empty());
  ASSERT_TRUE(db->Erase(oid).ok());
  EXPECT_TRUE(db->Point(Point{0.5, 0.5}).value().empty());
}

// ------------------------------------------------------- persistence

TEST(ShardPersist, ManifestRoundTripAndRecovery) {
  TempShardedFile file;
  const Workload w = MakeWorkload(/*seed=*/31, WorkloadShape{
                                                  .initial_objects = 120,
                                                  .batches = 3,
                                              });
  std::vector<std::vector<ObjectId>> expected;
  ObjectId straddler;
  {
    DBOptions opt;
    opt.shards = 4;
    auto db = DB::Open(file.path, opt).value();
    ASSERT_TRUE(db->sharded());
    WriteBatch init;
    for (const Rect& r : w.initial) init.Insert(r);
    ASSERT_TRUE(db->Apply(init).ok());
    for (const auto& batch : w.batches) ASSERT_TRUE(db->Apply(batch).ok());
    straddler = db->Insert(Rect{0.48, 0.48, 0.52, 0.52}).value();
    for (const Rect& win : w.windows) {
      expected.push_back(db->Window(win).value());
    }
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  {
    // Reopen asking for ONE shard: the stored manifest wins and the DB
    // comes back sharded, with the routing state recovered by scan.
    DBOptions opt;
    opt.shards = 1;
    auto db = DB::Open(file.path, opt).value();
    EXPECT_TRUE(db->sharded());
    EXPECT_EQ(db->shards(), 4u);
    EXPECT_EQ(db->object_count(), w.states.back().size() + 1);
    for (size_t i = 0; i < w.windows.size(); ++i) {
      EXPECT_EQ(db->Window(w.windows[i]).value(), expected[i]);
    }
    // Erase a boundary straddler AFTER recovery: the rebuilt per-oid
    // masks must fan the erase out to every replica.
    ASSERT_TRUE(db->Erase(straddler).ok());
    EXPECT_TRUE(db->Point(Point{0.5, 0.5}).value().empty());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  {
    auto db = DB::Open(file.path).value();
    EXPECT_EQ(db->shards(), 4u);
    EXPECT_EQ(db->object_count(), w.states.back().size());
    EXPECT_TRUE(db->Point(Point{0.5, 0.5}).value().empty());
    // New inserts after two reopens continue the dense oid sequence.
    const ObjectId next = db->Insert(Rect{0.2, 0.2, 0.3, 0.3}).value();
    EXPECT_EQ(next, straddler + 1);
  }
}

TEST(ShardPersist, SingleShardFileStaysClassic) {
  TempShardedFile file;
  {
    DBOptions opt;  // shards = 1
    auto db = DB::Open(file.path, opt).value();
    ASSERT_FALSE(db->sharded());
    ASSERT_TRUE(db->Insert(Rect{0.1, 0.1, 0.2, 0.2}).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  {
    // A classic single file reopens single even if shards are requested:
    // the stored layout wins in both directions.
    DBOptions opt;
    opt.shards = 4;
    auto db = DB::Open(file.path, opt).value();
    EXPECT_FALSE(db->sharded());
    EXPECT_EQ(db->shards(), 1u);
    EXPECT_EQ(db->object_count(), 1u);
  }
}

// --------------------------------------------------------------- executor

TEST(ShardExecutor, ScatterGatherMatchesRouterAnswers) {
  const Workload w = MakeWorkload(/*seed=*/41);
  auto db = DB::Open("", MemShardOptions(4)).value();
  WriteBatch init;
  for (const Rect& r : w.initial) init.Insert(r);
  ASSERT_TRUE(db->Apply(init).ok());

  auto exec = db->NewExecutor(3);
  ASSERT_TRUE(exec->sharded());
  EXPECT_EQ(exec->shards(), 4u);

  auto window_batch = exec->WindowBatch(w.windows);
  ASSERT_TRUE(window_batch.ok());
  for (size_t i = 0; i < w.windows.size(); ++i) {
    EXPECT_EQ(window_batch.value()[i], db->Window(w.windows[i]).value());
    auto par = exec->ParallelWindowQuery(w.windows[i]);
    ASSERT_TRUE(par.ok());
    EXPECT_EQ(par.value(), db->Window(w.windows[i]).value());
  }
  auto point_batch = exec->PointBatch(w.points);
  ASSERT_TRUE(point_batch.ok());
  for (size_t i = 0; i < w.points.size(); ++i) {
    EXPECT_EQ(point_batch.value()[i], db->Point(w.points[i]).value());
  }
  auto knn_batch = exec->NearestBatch(w.knn_points, 5);
  ASSERT_TRUE(knn_batch.ok());
  for (size_t i = 0; i < w.knn_points.size(); ++i) {
    EXPECT_EQ(knn_batch.value()[i], db->Nearest(w.knn_points[i], 5).value());
  }
  // Writes don't go through a sharded executor.
  EXPECT_TRUE(exec->MixedWorkload({}).status().IsInvalidArgument());
}

// ------------------------------------------------------------------ stats

TEST(ShardStats, AggregateAndPerShardCountersAgree) {
  auto db = DB::Open("", MemShardOptions(4)).value();
  WriteBatch batch;
  batch.Insert(Rect{0.45, 0.45, 0.55, 0.55});  // replicated to all 4
  batch.Insert(Rect{0.1, 0.1, 0.12, 0.12});    // one shard
  ASSERT_TRUE(db->Apply(batch).ok());

  const DBStats s = db->Stats();
  EXPECT_EQ(s.shards, 4u);
  EXPECT_EQ(s.objects, 2u);  // deduped, not per-replica
  EXPECT_TRUE(s.group_commit);
  EXPECT_EQ(s.write_epoch, db->write_epoch());

  const auto per_shard = db->ShardStats();
  ASSERT_EQ(per_shard.size(), 4u);
  uint64_t entries = 0, replicas = 0, batches = 0;
  for (const auto& c : per_shard) {
    entries += c.index_entries;
    replicas += c.objects;
    batches += c.batches;
  }
  EXPECT_EQ(entries, s.index_entries);
  EXPECT_EQ(replicas, 5u);  // 4 replicas + 1 single-shard object
  EXPECT_GE(batches, 4u);   // the batch fanned out to every shard
}

// ------------------------------------------------------- concurrent churn

/// Concurrent writers vs scatter-gather readers on an N=4 sharded DB.
/// Readers can observe a batch applied on one shard and not another
/// (the documented cross-shard contract), so the only invariants checked
/// under churn are: queries succeed, results are live-or-ever-inserted
/// oids, and no oid appears twice in one answer (dedup holds under
/// concurrency). The quiescent end state is checked exactly.
TEST(ShardStressMixed, ConcurrentChurnKeepsDedupAndLiveness) {
  auto db = DB::Open("", MemShardOptions(4)).value();
  constexpr size_t kRounds = 30;
  constexpr size_t kPerRound = 8;

  std::atomic<bool> stop{false};
  Status writer_status;
  std::thread writer([&] {
    Random rng(7);
    for (size_t r = 0; r < kRounds; ++r) {
      WriteBatch batch;
      for (size_t i = 0; i < kPerRound; ++i) {
        const double x = rng.NextDouble() * 0.9;
        const double y = rng.NextDouble() * 0.9;
        // Mix of straddlers (big) and local rects (small).
        const double ext = (i % 3 == 0) ? 0.2 : 0.01;
        batch.Insert(Rect{x, y, std::min(1.0, x + ext),
                          std::min(1.0, y + ext)});
      }
      auto ids = db->Apply(batch, Durability::kPublished);
      if (!ids.ok()) {
        writer_status = ids.status();
        break;
      }
    }
    stop.store(true, std::memory_order_release);
  });

  Status reader_status;
  std::thread reader([&] {
    Random rng(11);
    while (!stop.load(std::memory_order_acquire)) {
      const double x = rng.NextDouble() * 0.8;
      const double y = rng.NextDouble() * 0.8;
      const Rect win{x, y, x + 0.2, y + 0.2};
      auto got = db->Window(win);
      if (!got.ok()) {
        reader_status = got.status();
        break;
      }
      // Sorted + unique (the gather dedup) and only ever-assigned oids.
      const auto& ids = got.value();
      for (size_t i = 0; i < ids.size(); ++i) {
        if (i > 0 && ids[i] <= ids[i - 1]) {
          reader_status = Status::Corruption("duplicate or unsorted oid");
          break;
        }
      }
      auto knn = db->Nearest(Point{x, y}, 3);
      if (!knn.ok()) {
        reader_status = knn.status();
        break;
      }
    }
  });

  writer.join();
  reader.join();
  ASSERT_TRUE(writer_status.ok()) << writer_status.ToString();
  ASSERT_TRUE(reader_status.ok()) << reader_status.ToString();

  // Quiescent exactness: every inserted object is found exactly once.
  EXPECT_EQ(db->object_count(), kRounds * kPerRound);
  auto all = db->Window(Rect{0.0, 0.0, 1.0, 1.0}).value();
  EXPECT_EQ(all.size(), kRounds * kPerRound);
  std::set<ObjectId> uniq(all.begin(), all.end());
  EXPECT_EQ(uniq.size(), all.size());
}

}  // namespace
}  // namespace zdb
