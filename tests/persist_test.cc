// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Durability: an index checkpointed into a POSIX file must reopen in a
// fresh process-like context (new pager, new pool, new index object) and
// answer queries identically — including polygon geometry, counters and
// options.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "core/spatial_index.h"
#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

struct TempFile {
  TempFile() {
    char tmpl[] = "/tmp/zdb_persist_XXXXXX";
    int fd = ::mkstemp(tmpl);
    EXPECT_GE(fd, 0);
    ::close(fd);
    path = tmpl;
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Persist, ReopenRoundTrip) {
  TempFile file;
  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  const auto data = GenerateData(800, dg);
  const Polygon tri({{0.41, 0.41}, {0.47, 0.42}, {0.44, 0.48}});
  const auto windows = GenerateWindows(15, 0.01, QueryGenOptions{});

  PageId master;
  std::vector<std::vector<ObjectId>> expected;
  ObjectId tri_oid;
  {
    auto posix = PosixFile::Open(file.path).value();
    auto pager = Pager::Open(std::move(posix), 512).value();
    BufferPool pool(pager.get(), 64);
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(8);
    opt.query = DecomposeOptions::ErrorBound(0.1, 64);
    auto index = SpatialIndex::Create(&pool, opt).value();
    for (const Rect& r : data) ASSERT_TRUE(index->Insert(r).ok());
    tri_oid = index->InsertPolygon(tri).value();
    // Erase a few to exercise tombstones across restart.
    for (ObjectId oid = 0; oid < 50; oid += 5) {
      ASSERT_TRUE(index->Erase(oid).ok());
    }

    for (const Rect& w : windows) {
      auto hits = index->WindowQuery(w).value();
      std::sort(hits.begin(), hits.end());
      expected.push_back(std::move(hits));
    }

    master = index->Checkpoint().value();
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(pager->Sync().ok());
  }

  // "Restart": everything reconstructed from the file.
  {
    auto posix = PosixFile::Open(file.path).value();
    auto pager = Pager::Open(std::move(posix), 512).value();
    BufferPool pool(pager.get(), 64);
    auto index_r = SpatialIndex::Open(&pool, master);
    ASSERT_TRUE(index_r.ok()) << index_r.status().ToString();
    auto& index = *index_r.value();

    // Options restored.
    EXPECT_EQ(index.options().data.max_elements, 8u);
    EXPECT_EQ(index.options().query.policy,
              DecomposeOptions::Policy::kErrorBound);
    EXPECT_EQ(index.object_count(), 800u + 1 - 10);

    for (size_t i = 0; i < windows.size(); ++i) {
      auto hits = index.WindowQuery(windows[i]).value();
      std::sort(hits.begin(), hits.end());
      ASSERT_EQ(hits, expected[i]) << "window " << i;
    }

    // Polygon geometry survived; exact refinement still works.
    auto at = index.PointQuery(Point{0.44, 0.44}).value();
    EXPECT_TRUE(std::find(at.begin(), at.end(), tri_oid) != at.end());
    auto d = index.DistanceTo(tri_oid, Point{0.44, 0.44});
    ASSERT_TRUE(d.ok());
    EXPECT_DOUBLE_EQ(d.value(), 0.0);

    // The reopened index accepts further updates.
    ASSERT_TRUE(index.Insert(Rect{0.9, 0.9, 0.95, 0.95}).ok());
    ASSERT_TRUE(index.btree()->CheckInvariants().ok());
  }
}

TEST(Persist, RepeatedCheckpointsReuseMasterAndFreeChains) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  SpatialIndexOptions opt;
  auto index = SpatialIndex::Create(&pool, opt).value();
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  for (const Rect& r : GenerateData(300, dg)) {
    ASSERT_TRUE(index->Insert(r).ok());
  }

  const PageId m1 = index->Checkpoint().value();
  const uint32_t pages_after_first = pager->live_page_count();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(index->Checkpoint().value(), m1);
  }
  // Chains are recycled: no unbounded growth from checkpointing alone.
  EXPECT_LE(pager->live_page_count(), pages_after_first + 2);
}

TEST(Persist, OpenRejectsGarbage) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 8);
  PageId junk;
  {
    auto ref = pool.New().value();
    junk = ref.id();
    ref.mutable_data()[0] = 42;
  }
  EXPECT_FALSE(SpatialIndex::Open(&pool, junk).ok());
}

}  // namespace
}  // namespace zdb
