// FAIL case: mutating a field guarded by a reader/writer mutex while
// holding it only shared. A reader section proves read access, not write
// access — the analysis must demand the exclusive hold.

#include "common/mutex.h"
#include "common/thread_annotations.h"

struct Index {
  zdb::SharedMutex latch;
  int entries GUARDED_BY(latch) = 0;

  void Mutate() {
    zdb::ReaderLock lock(latch);
    ++entries;  // shared hold only; write needs exclusive
  }
};

int main() {
  Index i;
  i.Mutate();
  return 0;
}
