// FAIL case: an early return leaks a manually acquired lock. The
// analysis tracks every path's lockset, so the path that skips Unlock()
// must be rejected ("mutex is still held at the end of function").

#include "common/mutex.h"
#include "common/thread_annotations.h"

struct Queue {
  zdb::Mutex mu;
  int depth GUARDED_BY(mu) = 0;

  int Pop() {
    mu.Lock();
    if (depth == 0) return -1;  // leaks mu
    --depth;
    mu.Unlock();
    return depth;
  }
};

int main() {
  Queue q;
  return q.Pop();
}
