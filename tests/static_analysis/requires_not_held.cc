// FAIL case: calling a REQUIRES(mu) function without holding mu. This is
// the *Locked-suffix convention the engine uses everywhere (InsertLocked,
// CheckpointLocked, ...): forgetting the lock at a call site must not
// compile.

#include "common/mutex.h"
#include "common/thread_annotations.h"

struct Table {
  zdb::Mutex mu;
  int rows GUARDED_BY(mu) = 0;

  void InsertLocked() REQUIRES(mu) { ++rows; }

  void Insert() { InsertLocked(); }  // missing MutexLock
};

int main() {
  Table t;
  t.Insert();
  return 0;
}
