#!/bin/sh
# Drives one negative-compile (or positive-control) case of the
# thread-safety suite.
#
#   run_case.sh <clang++> <PASS|FAIL> <case.cc> <include-dir>
#
# FAIL cases must be rejected by the compiler AND the diagnostic must
# come from the thread-safety analysis — a case failing for any other
# reason (syntax error, missing header) is a broken case, not a caught
# violation. PASS cases are positive controls: the disciplined versions
# of the same patterns must stay warning-clean, proving the suite fails
# for the right reason and not because the flags reject everything.
set -u

compiler="$1"
mode="$2"
src="$3"
incdir="$4"

out=$("$compiler" -std=c++20 -fsyntax-only -I "$incdir" \
      -Wthread-safety -Werror=thread-safety-analysis "$src" 2>&1)
status=$?

case "$mode" in
  PASS)
    if [ "$status" -ne 0 ]; then
      echo "$out"
      echo "FAILED: expected a clean compile for $src"
      exit 1
    fi
    ;;
  FAIL)
    if [ "$status" -eq 0 ]; then
      echo "FAILED: expected a thread-safety error for $src, compiled clean"
      exit 1
    fi
    if ! echo "$out" | grep -qi "thread.safety"; then
      echo "$out"
      echo "FAILED: $src was rejected, but not by the thread-safety analysis"
      exit 1
    fi
    ;;
  *)
    echo "unknown mode: $mode (want PASS or FAIL)"
    exit 2
    ;;
esac

exit 0
