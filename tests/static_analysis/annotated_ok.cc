// PASS control: the disciplined versions of every FAIL case. These must
// compile warning-clean, proving the suite's flags reject the violations
// and not the annotation vocabulary itself.

#include "common/mutex.h"
#include "common/thread_annotations.h"

struct Disciplined {
  zdb::Mutex mu;
  zdb::CondVar cv;
  int value GUARDED_BY(mu) = 0;
  bool open GUARDED_BY(mu) = false;

  zdb::SharedMutex latch;
  int entries GUARDED_BY(latch) = 0;

  // guarded_by_unlocked_write.cc, done right.
  void Bump() EXCLUDES(mu) {
    zdb::MutexLock lock(mu);
    ++value;
  }

  // requires_not_held.cc, done right.
  void InsertLocked() REQUIRES(mu) { ++value; }
  void Insert() EXCLUDES(mu) {
    zdb::MutexLock lock(mu);
    InsertLocked();
  }

  // shared_write_under_reader.cc, done right: shared hold for the read,
  // exclusive hold for the write.
  int Read() EXCLUDES(latch) {
    zdb::ReaderLock lock(latch);
    return entries;
  }
  void Mutate() EXCLUDES(latch) {
    zdb::WriterLock lock(latch);
    ++entries;
  }

  // missing_release.cc, done right: every path releases.
  int Pop() EXCLUDES(mu) {
    mu.Lock();
    if (value == 0) {
      mu.Unlock();
      return -1;
    }
    --value;
    const int left = value;
    mu.Unlock();
    return left;
  }

  // condvar_wait_unheld.cc, done right: wait under the lock.
  void Await() EXCLUDES(mu) {
    zdb::MutexLock lock(mu);
    while (!open) cv.Wait(mu);
  }
  void Open() EXCLUDES(mu) {
    {
      zdb::MutexLock lock(mu);
      open = true;
    }
    cv.NotifyAll();
  }
};

int main() {
  Disciplined d;
  d.Bump();
  d.Insert();
  (void)d.Read();
  d.Mutate();
  (void)d.Pop();
  d.Open();
  d.Await();
  return 0;
}
