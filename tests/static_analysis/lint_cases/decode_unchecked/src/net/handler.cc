// Seeded violation: a protocol handler reads a wire field and ignores
// the accessor's success result — a short frame silently yields a
// zero-initialized length that flows into the reply. zdb_lint must
// reject this with [decode-hygiene].

#include <cstdint>

namespace zdb {

class PayloadReader;
void UseCount(uint32_t n);

void HandleFrame(PayloadReader& reader) {
  uint32_t count = 0;
  reader.GetU32(&count);  // result ignored: truncated frames pass through
  UseCount(count);
}

}  // namespace zdb
