// Positive control, decode half: every accessor result flows into a
// checked condition or a consumed status variable.

#include <cstdint>

namespace zdb {

class PayloadReader;
void UseCount(uint32_t n);

bool HandleFrame(PayloadReader& reader) {
  uint32_t count = 0;
  if (!reader.GetU32(&count)) return false;  // checked directly
  bool ok = reader.GetU32(&count);           // consumed via the variable
  if (!ok) return false;
  UseCount(count);
  return true;
}

}  // namespace zdb
