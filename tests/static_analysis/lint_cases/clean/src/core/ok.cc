// Positive control: the disciplined versions of every seeded pattern.
// Latched sections stay in-memory, the lock order follows the declared
// commit_mu_ -> latch_ chain, and pins stay on the stack. zdb_lint must
// run this tree clean — proving the FAIL fixtures fail for the right
// reason, not because the tool rejects everything.

namespace zdb {

class EpochPin {};
class EpochManager {
 public:
  EpochPin Pin();
};

class SpatialIndex {
 public:
  void Write();
  void ReadSnapshot();

 private:
  void MutateInMemory();
  Mutex commit_mu_;
  SharedMutex latch_;
  EpochManager* mgr_ = nullptr;
};

void SpatialIndex::Write() {
  MutexLock commit(commit_mu_);
  WriterSection lock(this);
  MutateInMemory();  // publish: no I/O under the latch
}

void SpatialIndex::MutateInMemory() {}

void SpatialIndex::ReadSnapshot() {
  EpochPin pin = mgr_->Pin();  // stack-scoped, dies in this frame
  (void)pin;
}

}  // namespace zdb
