// Seeded violation: a publish function calls into the durability tail
// while holding the exclusive writer latch. The sink (fsync) lives two
// hops away in another TU — only the interprocedural search can see it.
// zdb_lint must reject this with [io-under-latch].

namespace zdb {

void FlushTail();  // defined in src/storage/tail.cc

class SpatialIndex {
 public:
  void Publish();
};

void SpatialIndex::Publish() {
  WriterSection lock(this);
  FlushTail();  // I/O under the exclusive latch
}

}  // namespace zdb
