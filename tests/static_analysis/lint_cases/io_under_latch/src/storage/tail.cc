// The durability tail the seeded publish path reaches: FlushTail ->
// SyncJournal -> fsync. Nothing in this TU holds a latch; the violation
// only exists on the cross-TU path from publish.cc.

namespace zdb {

void SyncJournal() { fsync(3); }

void FlushTail() { SyncJournal(); }

}  // namespace zdb
