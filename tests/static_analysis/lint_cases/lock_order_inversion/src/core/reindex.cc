// The other half of the seeded inversion: Reindex takes the writer
// latch. On its own this is fine — the violation is the caller in
// gc.cc that enters with gc_mu_ held.

namespace zdb {

void SpatialIndex::Reindex() {
  WriterSection lock(this);
}

}  // namespace zdb
