// Seeded violation: the GC cycle holds gc_mu_ and calls into another TU
// that takes the exclusive writer latch — inverting the declared
// latch_ -> gc_mu_ order. Each TU is locally consistent; only the
// call-graph propagation sees the inversion. zdb_lint must reject this
// with [lock-order].

namespace zdb {

class SpatialIndex {
 public:
  void GcCycle();
  void Reindex();  // defined in src/core/reindex.cc

 private:
  Mutex gc_mu_;
  SharedMutex latch_;
};

void SpatialIndex::GcCycle() {
  MutexLock g(gc_mu_);
  Reindex();  // acquires latch_ while gc_mu_ is held
}

}  // namespace zdb
