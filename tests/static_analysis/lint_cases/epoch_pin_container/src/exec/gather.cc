// Seeded violation: a scatter-gather driver hoards EpochPins in an
// ad-hoc vector, detaching their lifetime from the scope (and thread)
// that pinned them. The sanctioned aggregate is core/epoch.h's
// EpochPinSet. zdb_lint must reject this with [epoch-pin].

#include <vector>

namespace zdb {

class EpochPin {};

void GatherShards() {
  std::vector<EpochPin> pins;  // pins must not live in containers
  pins.push_back(EpochPin());
}

}  // namespace zdb
