// FAIL case: touching the epoch manager's GC-owned lists without
// holding gc_mu_. Mirrors EpochManager's metas_/aborted_ discipline
// (core/epoch.h): the meta map and the aborted-range list are shared
// between the writer (RecordMeta/InvalidateRange under the index
// latch), readers (MetaAt) and the reclamation thread — every access
// must hold gc_mu_. The analysis must reject the unlocked prune.

#include <cstdint>
#include <map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

struct GcLists {
  zdb::Mutex gc_mu;
  std::map<uint64_t, int> metas GUARDED_BY(gc_mu);
  std::vector<uint64_t> aborted GUARDED_BY(gc_mu);

  // A "reclamation pass" that forgot the mutex: both touches must be
  // flagged.
  void PruneBelow(uint64_t floor) {
    metas.erase(metas.begin(), metas.lower_bound(floor));  // no lock held
    aborted.clear();                                       // no lock held
  }
};

int main() {
  GcLists g;
  g.PruneBelow(7);
  return 0;
}
