// FAIL case: writing a GUARDED_BY field without holding its mutex. The
// analysis must reject the unlocked increment.

#include "common/mutex.h"
#include "common/thread_annotations.h"

struct Counter {
  zdb::Mutex mu;
  int value GUARDED_BY(mu) = 0;

  void Bump() { ++value; }  // no lock held
};

int main() {
  Counter c;
  c.Bump();
  return 0;
}
