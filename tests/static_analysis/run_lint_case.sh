#!/bin/sh
# Drives one zdb_lint fixture (or positive control).
#
#   run_lint_case.sh <zdb_lint> <PASS|FAIL> <case-root> <conf> [check]
#
# FAIL fixtures are seeded violations: zdb_lint must report findings
# (exit 1, not a usage/parse error) AND the diagnostic must come from
# the named check — a fixture failing for any other reason (tool crash,
# wrong check firing) is a broken fixture, not a caught violation. PASS
# runs are positive controls: the disciplined version of the same
# patterns, and the real tree, must stay finding-free.
set -u

lint="$1"
mode="$2"
root="$3"
conf="$4"
check="${5:-}"

out=$("$lint" --root="$root" --config="$conf" 2>&1)
status=$?

case "$mode" in
  PASS)
    if [ "$status" -ne 0 ]; then
      echo "$out"
      echo "FAILED: expected a clean run for $root"
      exit 1
    fi
    ;;
  FAIL)
    if [ "$status" -eq 0 ]; then
      echo "FAILED: expected a $check finding for $root, ran clean"
      exit 1
    fi
    if [ "$status" -ne 1 ]; then
      echo "$out"
      echo "FAILED: zdb_lint errored (status $status) instead of reporting"
      exit 1
    fi
    if ! echo "$out" | grep -q "\[$check\]"; then
      echo "$out"
      echo "FAILED: $root was rejected, but not by the $check check"
      exit 1
    fi
    ;;
  *)
    echo "unknown mode: $mode (want PASS or FAIL)"
    exit 2
    ;;
esac

exit 0
