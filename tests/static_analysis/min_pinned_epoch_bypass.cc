// FAIL case: reading the min-pinned-epoch floor without pin_mu_.
// Mirrors EpochManager::min_pinned_ (core/epoch.h): the GC reclamation
// floor is min(min_pinned_, current epoch) computed UNDER pin_mu_ — the
// same mutex Pin() inserts under — so a new pin can never slip below a
// floor the GC already committed to. A cycle that reads the floor
// outside the mutex reintroduces exactly that race; the analysis must
// reject the bypass.

#include <cstdint>
#include <set>

#include "common/mutex.h"
#include "common/thread_annotations.h"

struct PinTable {
  zdb::Mutex pin_mu;
  std::multiset<uint64_t> pins GUARDED_BY(pin_mu);
  uint64_t min_pinned GUARDED_BY(pin_mu) = UINT64_MAX;

  void Pin(uint64_t epoch) {
    zdb::MutexLock lock(pin_mu);
    pins.insert(epoch);
    if (epoch < min_pinned) min_pinned = epoch;
  }

  // The racy GC cycle: the floor read bypasses pin_mu_. Must be
  // rejected.
  uint64_t ReclamationFloor(uint64_t current_epoch) {
    return min_pinned < current_epoch ? min_pinned : current_epoch;
  }
};

int main() {
  PinTable t;
  t.Pin(3);
  return static_cast<int>(t.ReclamationFloor(9) == 3 ? 0 : 1);
}
