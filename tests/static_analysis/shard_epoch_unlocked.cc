// FAIL case: reading the shard router's per-shard epoch vector without
// holding epoch_mu. Mirrors ShardRouter's discipline (shard/router.h):
// the per-shard durable-epoch snapshot is shared between the fan-out
// path (publishing under router_mu then epoch_mu, in that ACQUIRED_AFTER
// order) and WaitDurable's cross-shard gather — every read of the
// vector must hold epoch_mu, and a "fast path" that peeks at another
// shard's epoch lock-free is exactly the race the annotations exist to
// catch. The analysis must reject the unlocked scan.

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

struct RouterEpochs {
  zdb::Mutex router_mu;
  zdb::Mutex epoch_mu ACQUIRED_AFTER(router_mu);
  std::vector<uint64_t> shard_epochs GUARDED_BY(epoch_mu);

  // A durability gather that forgot the epoch mutex: the cross-shard
  // minimum must be taken under epoch_mu (the writer publishes there).
  uint64_t MinDurableEpoch() const {
    uint64_t lo = ~0ULL;
    for (uint64_t e : shard_epochs) {  // no lock held
      if (e < lo) lo = e;
    }
    return lo;
  }
};

int main() {
  RouterEpochs r;
  r.shard_epochs.resize(4);  // no lock held either
  return r.MinDurableEpoch() == 0 ? 0 : 1;
}
