// FAIL case: waiting on a condition variable without holding the mutex
// it releases. CondVar::Wait carries REQUIRES(mu) — a wait outside the
// lock would sleep while racing every reader of the predicate.

#include "common/mutex.h"
#include "common/thread_annotations.h"

struct Gate {
  zdb::Mutex mu;
  zdb::CondVar cv;
  bool open GUARDED_BY(mu) = false;

  void Await() {
    while (!open) cv.Wait(mu);  // mu not held (and `open` read unlocked)
  }
};

int main() {
  Gate g;
  (void)g;
  return 0;
}
