// FAIL case: advancing a replication follower cursor without holding
// ship_mu. Mirrors the log shipper's discipline (repl/ship.h): the
// per-follower cursor map is mutated by the ship loop (advance +
// in-flight accounting), by Ack arriving on a net thread (window
// release), and by Unsubscribe at connection teardown — every touch
// must hold ship_mu. An ack handler that bumps the acked epoch
// lock-free "because it's just one integer" is exactly the lost-update
// race the annotations exist to catch. The analysis must reject both
// the unlocked map probe and the unlocked cursor write.

#include <cstdint>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

struct ShipCursors {
  struct Cursor {
    uint64_t next_index = 0;
    uint64_t acked_epoch = 0;
    uint64_t in_flight = 0;
  };

  zdb::Mutex ship_mu;
  std::unordered_map<uint64_t, Cursor> followers GUARDED_BY(ship_mu);

  // An ack path that forgot the shipper mutex: the cursor it releases
  // is shared with the ship loop draining the same follower.
  void Ack(uint64_t token, uint64_t applied) {
    auto it = followers.find(token);  // no lock held
    if (it == followers.end()) return;
    if (applied > it->second.acked_epoch) {
      it->second.acked_epoch = applied;  // lost-update race with ShipLoop
      it->second.in_flight = 0;
    }
  }
};

int main() {
  ShipCursors c;
  c.Ack(1, 7);
  return 0;
}
