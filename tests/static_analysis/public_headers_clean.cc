// PASS control: every annotated public header must parse warning-clean
// under the analysis, inline bodies included. This is the same surface
// the static-analysis CI job builds, distilled to a syntax-only check so
// the suite catches annotation regressions without a full build.

#include "client/client.h"
#include "core/spatial_index.h"
#include "exec/executor.h"
#include "server/server.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "zdb/db.h"

int main() { return 0; }
