// Copyright (c) zdb authors. Licensed under the MIT license.

#include "common/coding.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace zdb {
namespace {

TEST(Coding, FixedRoundTrip) {
  char buf[8];
  EncodeFixed16(buf, 0xbeef);
  EXPECT_EQ(DecodeFixed16(buf), 0xbeef);
  EncodeFixed32(buf, 0xdeadbeef);
  EXPECT_EQ(DecodeFixed32(buf), 0xdeadbeefu);
  EncodeFixed64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(DecodeFixed64(buf), 0x0123456789abcdefULL);
}

TEST(Coding, FixedBERoundTrip) {
  char buf[8];
  for (uint64_t v : {0ULL, 1ULL, 0xffULL, 0x100ULL, 0xffffffffULL,
                     0x123456789abcdefULL, 0xffffffffffffffffULL}) {
    EncodeFixed64BE(buf, v);
    EXPECT_EQ(DecodeFixed64BE(buf), v);
  }
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xffffffffu}) {
    EncodeFixed32BE(buf, v);
    EXPECT_EQ(DecodeFixed32BE(buf), v);
  }
}

TEST(Coding, BigEndianPreservesOrder) {
  Random rng(1);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t a = rng.Next();
    const uint64_t b = rng.Next();
    std::string ka, kb;
    PutFixed64BE(&ka, a);
    PutFixed64BE(&kb, b);
    EXPECT_EQ(a < b, Slice(ka).compare(Slice(kb)) < 0)
        << "a=" << a << " b=" << b;
  }
}

TEST(Coding, VarintRoundTrip) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 300u, 16383u, 16384u, 1u << 21,
                     0xffffffffu}) {
    std::string s;
    PutVarint32(&s, v);
    EXPECT_EQ(s.size(), VarintLength32(v));
    const char* p = s.data();
    uint32_t got = 0;
    ASSERT_TRUE(GetVarint32(&p, s.data() + s.size(), &got));
    EXPECT_EQ(got, v);
    EXPECT_EQ(p, s.data() + s.size());
  }
}

TEST(Coding, VarintTruncatedFails) {
  std::string s;
  PutVarint32(&s, 1u << 28);
  for (size_t cut = 0; cut + 1 < s.size(); ++cut) {
    const char* p = s.data();
    uint32_t got;
    EXPECT_FALSE(GetVarint32(&p, s.data() + cut, &got)) << "cut=" << cut;
  }
}

TEST(Coding, VarintOverlongFails) {
  // Six continuation bytes exceed the 32-bit shift budget.
  const char bad[] = {'\x80', '\x80', '\x80', '\x80', '\x80', '\x01'};
  const char* p = bad;
  uint32_t got;
  EXPECT_FALSE(GetVarint32(&p, bad + sizeof(bad), &got));
}

TEST(Coding, HexRendering) {
  const char raw[] = {'\x00', '\x0a', '\xff'};
  EXPECT_EQ(ToHex(Slice(raw, 3)), "000aff");
  EXPECT_EQ(ToHex(Slice()), "");
}

}  // namespace
}  // namespace zdb
