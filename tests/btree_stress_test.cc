// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Larger-scale B+-tree stress: bulk load followed by heavy mixed churn,
// across page sizes, with invariant audits. Catches rebalancing bugs
// that only appear at depth >= 4 or with thousands of merges.

#include <gtest/gtest.h>

#include <map>

#include "btree/btree.h"
#include "btree/cursor.h"
#include "common/random.h"
#include "storage/pager.h"

namespace zdb {
namespace {

std::string Key(uint64_t i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "k%010llu",
                static_cast<unsigned long long>(i));
  return buf;
}

class BTreeStressTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BTreeStressTest, BulkLoadThenChurn) {
  const uint32_t page_size = GetParam();
  auto pager = Pager::OpenInMemory(page_size);
  BufferPool pool(pager.get(), 128);
  auto tree = BTree::Create(&pool).value();

  // Bulk load 20k sorted entries.
  std::map<std::string, std::string> model;
  const uint64_t n = 20000;
  {
    uint64_t i = 0;
    ASSERT_TRUE(tree->BulkLoad([&](std::string* k, std::string* v) {
                      if (i >= n) return false;
                      *k = Key(i * 3);  // gaps for later inserts
                      *v = "v" + std::to_string(i);
                      model[*k] = *v;
                      ++i;
                      return true;
                    })
                    .ok());
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  if (page_size == 256) {
    EXPECT_GE(tree->height(), 4u);  // deep tree on tiny pages
  }

  // Heavy churn: 30k mixed operations biased toward deletion first, then
  // insertion, forcing merge storms and regrowth.
  Random rng(page_size * 7 + 1);
  for (int phase = 0; phase < 2; ++phase) {
    const int delete_bias = phase == 0 ? 70 : 20;
    for (int op = 0; op < 15000; ++op) {
      const std::string key = Key(rng.Uniform(n * 3));
      if (static_cast<int>(rng.Uniform(100)) < delete_bias) {
        Status s = tree->Delete(key);
        if (model.count(key)) {
          ASSERT_TRUE(s.ok()) << s.ToString();
          model.erase(key);
        } else {
          ASSERT_TRUE(s.IsNotFound());
        }
      } else {
        const std::string val = "x" + std::to_string(rng.Next() % 997);
        Status s = tree->Insert(key, val);
        if (model.count(key)) {
          ASSERT_TRUE(s.IsAlreadyExists());
        } else {
          ASSERT_TRUE(s.ok()) << s.ToString();
          model[key] = val;
        }
      }
    }
    ASSERT_TRUE(tree->CheckInvariants().ok()) << "phase " << phase;
    ASSERT_EQ(tree->size(), model.size());
  }

  // Full ordered equivalence.
  auto cur = tree->SeekFirst().value();
  auto it = model.begin();
  while (cur.Valid()) {
    ASSERT_NE(it, model.end());
    ASSERT_EQ(cur.key().ToString(), it->first);
    ASSERT_EQ(cur.value().ToString(), it->second);
    ASSERT_TRUE(cur.Next().ok());
    ++it;
  }
  ASSERT_EQ(it, model.end());

  // Drain to empty: page accounting must return everything.
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(tree->Delete(k).ok());
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->height(), 1u);
  EXPECT_LE(pager->live_page_count(), 3u);
}

INSTANTIATE_TEST_SUITE_P(PageSizes, BTreeStressTest,
                         ::testing::Values(256u, 1024u));

}  // namespace
}  // namespace zdb
