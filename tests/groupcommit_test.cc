// Copyright (c) zdb authors. Licensed under the MIT license.
//
// The off-latch group-commit durability pipeline: batches published
// under the latch coalesce into fewer journal commits, durability
// waiters complete in epoch order through the durable watermark, and a
// crash between publish and commit rolls published batches back as
// units — never partially. Runs under TSan (label "groupcommit"), so
// the durability thread's handoffs are race-checked here.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/spatial_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "zdb/db.h"

namespace zdb {
namespace {

/// Journaled in-memory rig with crash simulation, plus a group-commit
/// aware baseline builder (the baseline commits synchronously BEFORE the
/// pipeline starts, so it is the initial durable group boundary).
struct GroupRig {
  GroupRig() {
    auto db_file = std::make_unique<MemFile>();
    auto journal_file = std::make_unique<MemFile>();
    db = db_file.get();
    journal = journal_file.get();
    pager =
        Pager::Open(std::move(db_file), std::move(journal_file), 512).value();
    pool = std::make_unique<BufferPool>(pager.get(), 64);
  }

  /// Creates the index, inserts `n` baseline objects on a diagonal,
  /// checkpoints and commits synchronously.
  std::unique_ptr<SpatialIndex> Baseline(int n) {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(4);
    auto index = SpatialIndex::Create(pool.get(), opt).value();
    EXPECT_TRUE(pager->BeginBatch().ok());
    for (int i = 0; i < n; ++i) {
      const double x = 0.8 * i / n + 0.01;
      EXPECT_TRUE(index->Insert(Rect{x, x, x + 0.004, x + 0.004}).ok());
    }
    master = index->Checkpoint().value();
    EXPECT_TRUE(pool->FlushAll().ok());
    EXPECT_TRUE(pager->CommitBatch().ok());
    return index;
  }

  /// Simulates a crash: snapshots both files NOW (while the doomed index
  /// and its durability thread may still be alive) for a later reopen.
  void SnapshotForCrash() {
    db_snapshot = db->Snapshot();
    journal_snapshot = journal->Snapshot();
  }

  /// Reopens fresh structures from the crash snapshots (recovery runs
  /// inside Pager::Open). The old index must be destroyed first.
  std::unique_ptr<SpatialIndex> Reopen() {
    auto db_copy = std::make_unique<MemFile>();
    db_copy->RestoreSnapshot(db_snapshot);
    auto journal_copy = std::make_unique<MemFile>();
    journal_copy->RestoreSnapshot(journal_snapshot);
    db = db_copy.get();
    journal = journal_copy.get();
    pool.reset();
    pager = Pager::Open(std::move(db_copy), std::move(journal_copy), 512)
                .value();
    pool = std::make_unique<BufferPool>(pager.get(), 64);
    return SpatialIndex::Open(pool.get(), master).value();
  }

  MemFile* db;
  MemFile* journal;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<BufferPool> pool;
  PageId master = kInvalidPageId;
  std::vector<char> db_snapshot;
  std::vector<char> journal_snapshot;
};

WriteBatch InsertBatch(double x, int n = 1) {
  WriteBatch b;
  for (int i = 0; i < n; ++i) {
    b.Insert(Rect{x, 0.9, x + 0.004, 0.95});
    x += 0.005;
  }
  return b;
}

TEST(GroupCommit, WritersCoalesceIntoFewerCommitsThanBatches) {
  GroupRig rig;
  auto index = rig.Baseline(50);
  ASSERT_TRUE(index->StartGroupCommit().ok());

  // Freeze the durability thread so every published batch lands in the
  // same armed journal batch, then publish from k writer threads.
  index->SetGroupCommitPaused(true);
  const uint64_t commits_before = rig.pager->commit_count();
  const uint64_t durable_before = index->durable_epoch();

  constexpr int kWriters = 4;
  constexpr int kBatchesPerWriter = 5;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        auto r = index->ApplyBatch(
            InsertBatch(0.01 + 0.03 * (w * kBatchesPerWriter + b)),
            Durability::kPublished);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  for (auto& t : writers) t.join();

  // Published: readers see all 20 batches; nothing is durable yet and
  // the journal has not committed.
  EXPECT_EQ(index->object_count(), 70u);
  EXPECT_EQ(index->durable_epoch(), durable_before);
  EXPECT_EQ(rig.pager->commit_count(), commits_before);

  // Resume: the pipeline must make everything durable with FEWER journal
  // commits than batches — one group, in the usual case.
  index->SetGroupCommitPaused(false);
  const uint64_t last_epoch = index->write_epoch();
  ASSERT_TRUE(index->WaitDurable(last_epoch).ok());

  const uint64_t commits = rig.pager->commit_count() - commits_before;
  EXPECT_GE(commits, 1u);
  EXPECT_LT(commits, static_cast<uint64_t>(kWriters * kBatchesPerWriter));
  EXPECT_GE(index->durable_epoch(), last_epoch);
}

TEST(GroupCommit, WaitersCompleteInEpochOrder) {
  GroupRig rig;
  auto index = rig.Baseline(30);
  ASSERT_TRUE(index->StartGroupCommit().ok());

  // Each writer publishes under a turn mutex so it learns its batch's
  // exact epoch, then waits for durability. Completion contract: a
  // waiter for epoch e may only return OK once the durable watermark has
  // reached e — so at every completion, every batch with a smaller
  // epoch is durable too (strict epoch order).
  std::mutex turn;
  std::atomic<int> ok_count{0};
  constexpr int kWriters = 4;
  constexpr int kBatchesPerWriter = 6;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        uint64_t epoch = 0;
        {
          std::lock_guard<std::mutex> lk(turn);
          auto r = index->ApplyBatch(
              InsertBatch(0.01 + 0.02 * (w * kBatchesPerWriter + b)),
              Durability::kPublished);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          epoch = index->write_epoch();
        }
        ASSERT_TRUE(index->WaitDurable(epoch).ok());
        EXPECT_GE(index->durable_epoch(), epoch);
        ++ok_count;
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(ok_count.load(), kWriters * kBatchesPerWriter);
  EXPECT_EQ(index->object_count(),
            30u + static_cast<uint64_t>(kWriters * kBatchesPerWriter));
}

TEST(GroupCommit, WaitDurableTimesOutWhilePipelineIsStalled) {
  GroupRig rig;
  auto index = rig.Baseline(10);
  ASSERT_TRUE(index->StartGroupCommit().ok());

  index->SetGroupCommitPaused(true);
  ASSERT_TRUE(index->ApplyBatch(InsertBatch(0.1),
                                Durability::kPublished).ok());
  const uint64_t epoch = index->write_epoch();

  // Stalled pipeline: a bounded wait must report TimedOut, not hang.
  EXPECT_TRUE(index->WaitDurable(epoch, /*timeout_ms=*/50).IsTimedOut());

  index->SetGroupCommitPaused(false);
  EXPECT_TRUE(index->WaitDurable(epoch).ok());
  EXPECT_GE(index->durable_epoch(), epoch);
}

TEST(GroupCommit, EmptyBatchDoesNotCommitOrAdvanceEpoch) {
  // Regression: ApplyBatch used to run its entry checkpoint + journal
  // commit even when the batch validated empty. An empty batch must be
  // a true no-op on BOTH paths: no journal commit, no epoch movement.
  {
    // Legacy synchronous path (no pipeline).
    GroupRig rig;
    auto index = rig.Baseline(10);
    const uint64_t commits = rig.pager->commit_count();
    const uint64_t epoch = index->write_epoch();
    auto r = index->ApplyBatch(WriteBatch{});
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().empty());
    EXPECT_EQ(rig.pager->commit_count(), commits);
    EXPECT_EQ(index->write_epoch(), epoch);
  }
  {
    // Group-commit path: nothing published either.
    GroupRig rig;
    auto index = rig.Baseline(10);
    ASSERT_TRUE(index->StartGroupCommit().ok());
    const uint64_t commits = rig.pager->commit_count();
    const uint64_t epoch = index->write_epoch();
    const uint64_t durable = index->durable_epoch();
    auto r = index->ApplyBatch(WriteBatch{}, Durability::kPublished);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().empty());
    EXPECT_EQ(index->write_epoch(), epoch);
    EXPECT_EQ(index->durable_epoch(), durable);
    ASSERT_TRUE(index->StopGroupCommit().ok());
    // Stop may retire the armed batch; the no-op itself committed nothing
    // while the pipeline ran.
    EXPECT_LE(rig.pager->commit_count(), commits + 1);
  }
}

TEST(GroupCommit, CrashBetweenPublishAndCommitRollsBackWholeBatches) {
  GroupRig rig;
  std::vector<ObjectId> baseline_ids;
  {
    auto index = rig.Baseline(40);
    baseline_ids = index->WindowQuery(Rect{0, 0, 1, 1}).value();
    std::sort(baseline_ids.begin(), baseline_ids.end());
    ASSERT_TRUE(index->StartGroupCommit().ok());

    // Two published-but-not-durable batches: a mixed erase+insert and a
    // pure insert. Both visible to readers, neither committed.
    index->SetGroupCommitPaused(true);
    WriteBatch mixed;
    for (ObjectId oid = 0; oid < 10; ++oid) mixed.Erase(oid);
    mixed.Insert(Rect{0.9, 0.02, 0.95, 0.06});
    ASSERT_TRUE(index->ApplyBatch(mixed, Durability::kPublished).ok());
    ASSERT_TRUE(index->ApplyBatch(InsertBatch(0.3, 5),
                                  Durability::kPublished).ok());
    EXPECT_EQ(index->object_count(), 36u);  // 40 - 10 + 1 + 5

    // Power goes out between publish and the group's journal commit.
    rig.SnapshotForCrash();
    // (The doomed index's destructor drains the pipeline — that is the
    // graceful-shutdown path and must not affect the snapshot.)
  }

  auto reopened = rig.Reopen();
  ASSERT_TRUE(reopened->btree()->CheckInvariants().ok());
  // Whole-batch rollback: the pre-crash durable state, exactly. No
  // partial batch may survive — not the erases, not the inserts.
  EXPECT_EQ(reopened->object_count(), 40u);
  auto hits = reopened->WindowQuery(Rect{0, 0, 1, 1}).value();
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, baseline_ids);
  EXPECT_TRUE(reopened->WindowQuery(Rect{0.89, 0.01, 0.96, 0.07})
                  .value()
                  .empty());
  EXPECT_TRUE(reopened->WindowQuery(Rect{0.29, 0.89, 0.45, 0.96})
                  .value()
                  .empty());
}

TEST(GroupCommit, CrashPreservesDurableGroupsAndDropsPublishedTail) {
  GroupRig rig;
  {
    auto index = rig.Baseline(20);
    ASSERT_TRUE(index->StartGroupCommit().ok());

    // Batch A becomes durable (kDurable waits for its group's fsync).
    ASSERT_TRUE(index->ApplyBatch(InsertBatch(0.1, 3),
                                  Durability::kDurable).ok());
    // Batch B is only published when the "power" goes out.
    index->SetGroupCommitPaused(true);
    ASSERT_TRUE(index->ApplyBatch(InsertBatch(0.5, 4),
                                  Durability::kPublished).ok());
    EXPECT_EQ(index->object_count(), 27u);
    rig.SnapshotForCrash();
  }

  auto reopened = rig.Reopen();
  ASSERT_TRUE(reopened->btree()->CheckInvariants().ok());
  EXPECT_EQ(reopened->object_count(), 23u);  // baseline + A, not B
  EXPECT_EQ(reopened->WindowQuery(Rect{0.09, 0.89, 0.13, 0.96})
                .value()
                .size(),
            3u);
  EXPECT_TRUE(reopened->WindowQuery(Rect{0.49, 0.89, 0.53, 0.96})
                  .value()
                  .empty());
}

TEST(GroupCommit, ReadersRunThroughTheDurabilityWindow) {
  // Concurrent readers query while writers push durable batches through
  // the pipeline — under TSan this is the race check on the durability
  // thread's latch/flush/commit handoffs.
  GroupRig rig;
  auto index = rig.Baseline(60);
  ASSERT_TRUE(index->StartGroupCommit().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_acquire)) {
        const double lo = 0.1 + 0.2 * t;
        if (!index->WindowQuery(Rect{lo, lo, lo + 0.3, lo + 0.3}).ok() ||
            !index->NearestNeighbors(Point{lo, lo}, 3).ok()) {
          ++failures;
          return;
        }
      }
    });
  }

  for (int b = 0; b < 12; ++b) {
    ASSERT_TRUE(index->ApplyBatch(InsertBatch(0.01 + 0.07 * b),
                                  Durability::kDurable).ok());
  }
  // Single-op mutations are acknowledged at publish while the pipeline
  // runs; WaitDurable on the current epoch blocks until they fsync.
  ASSERT_TRUE(index->Insert(Rect{0.85, 0.85, 0.86, 0.86}).ok());
  ASSERT_TRUE(index->Erase(0).ok());
  ASSERT_TRUE(index->WaitDurable(index->write_epoch()).ok());

  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(index->object_count(), 72u);  // 60 + 12 + 1 - 1
}

TEST(GroupCommit, StopDrainsRestartsAndSurvivesCrash) {
  GroupRig rig;
  {
    auto index = rig.Baseline(15);
    ASSERT_TRUE(index->StartGroupCommit().ok());
    index->SetGroupCommitPaused(true);
    ASSERT_TRUE(index->ApplyBatch(InsertBatch(0.2, 2),
                                  Durability::kPublished).ok());

    // Stop drains the published tail even while paused, leaving
    // everything durable; the pipeline restarts cleanly.
    ASSERT_TRUE(index->StopGroupCommit().ok());
    EXPECT_FALSE(index->group_commit_active());
    ASSERT_TRUE(index->StartGroupCommit().ok());
    ASSERT_TRUE(index->ApplyBatch(InsertBatch(0.6, 2),
                                  Durability::kDurable).ok());
    ASSERT_TRUE(index->StopGroupCommit().ok());
    rig.SnapshotForCrash();
  }
  auto reopened = rig.Reopen();
  ASSERT_TRUE(reopened->btree()->CheckInvariants().ok());
  EXPECT_EQ(reopened->object_count(), 19u);
}

TEST(GroupCommit, StartRequiresJournalAndNoCallerBatch) {
  {
    auto pager = Pager::OpenInMemory(512);
    BufferPool pool(pager.get(), 32);
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(4);
    auto index = SpatialIndex::Create(&pool, opt).value();
    EXPECT_TRUE(index->StartGroupCommit().IsInvalidArgument());
  }
  {
    GroupRig rig;
    auto index = rig.Baseline(5);
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    EXPECT_TRUE(index->StartGroupCommit().IsInvalidArgument());
    ASSERT_TRUE(rig.pager->CommitBatch().ok());
    ASSERT_TRUE(index->StartGroupCommit().ok());
    EXPECT_TRUE(index->StartGroupCommit().IsInvalidArgument());  // twice
  }
}

TEST(GroupCommit, DbFacadeRunsThePipeline) {
  // The facade wires the pipeline up from DBOptions: a journaled
  // in-memory DB applies published and durable batches, reports the
  // epochs and coalesced commit count through Stats(), and Checkpoint()
  // waits the pipeline out.
  DBOptions options;
  options.index.data = DecomposeOptions::SizeBound(4);
  options.memory_journal = true;
  auto db = DB::Open(":memory:", options).value();
  ASSERT_TRUE(db->Stats().group_commit);

  ASSERT_TRUE(db->Apply(InsertBatch(0.1, 3)).ok());  // durable default
  ASSERT_TRUE(db->Apply(InsertBatch(0.4, 2), Durability::kPublished).ok());
  EXPECT_EQ(db->object_count(), 5u);

  ASSERT_TRUE(db->Checkpoint().ok());
  const DBStats s = db->Stats();
  EXPECT_EQ(s.objects, 5u);
  EXPECT_GE(s.durable_epoch, s.write_epoch);
  EXPECT_GE(s.journal_commits, 1u);
  EXPECT_TRUE(db->WaitDurable(db->write_epoch()).ok());

  // And the legacy path is still selectable.
  DBOptions sync = options;
  sync.group_commit = false;
  auto db2 = DB::Open(":memory:", sync).value();
  EXPECT_FALSE(db2->Stats().group_commit);
  ASSERT_TRUE(db2->Apply(InsertBatch(0.1)).ok());
  EXPECT_EQ(db2->object_count(), 1u);
}

}  // namespace
}  // namespace zdb
