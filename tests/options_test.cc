// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Option validation: every knob bundle (DBOptions, ServerOptions) is
// checked by a Validate() that returns a typed Status — misconfiguration
// is a value the caller handles, never an abort. These tests pin the
// contract: each rejection is death-free, carries kInvalidArgument, and
// the accept cases actually pass.

#include <string>

#include "gtest/gtest.h"

#include "server/server.h"
#include "zdb/db.h"

namespace zdb {
namespace {

// ------------------------------------------------------------- DBOptions

TEST(OptionsValidate, DbDefaultsAreValid) {
  EXPECT_TRUE(DBOptions{}.Validate().ok());
}

TEST(OptionsValidate, DbRejectsZeroCachePages) {
  DBOptions opt;
  opt.cache_pages = 0;
  const Status s = opt.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(OptionsValidate, DbRejectsShardCountsOutsideTheRange) {
  DBOptions opt;
  opt.shards = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.shards = 65;  // the routing prefix caps the fan-out at 64
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.shards = 64;
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(OptionsValidate, DbOpenSurfacesTheTypedStatus) {
  DBOptions opt;
  opt.cache_pages = 0;
  auto r = DB::Open("", opt);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

// --------------------------------------------------------- ServerOptions

TEST(OptionsValidate, ServerDefaultsAreValid) {
  EXPECT_TRUE(net::ServerOptions{}.Validate().ok());
}

TEST(OptionsValidate, ServerRejectsNoListener) {
  net::ServerOptions opt;
  opt.tcp = false;
  opt.unix_path.clear();
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.unix_path = "/tmp/zdb.sock";
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(OptionsValidate, ServerRejectsZeroWorkersOrNetThreads) {
  net::ServerOptions opt;
  opt.workers = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.workers = 1;
  opt.net_threads = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
}

TEST(OptionsValidate, FollowerRequiresALeaderEndpoint) {
  net::ServerOptions opt;
  opt.role = net::ServerRole::kFollower;
  const Status missing = opt.Validate();
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.IsInvalidArgument()) << missing.ToString();

  opt.leader_endpoint = "not-a-uri";
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.leader_endpoint = "tcp://localhost:missing-port";
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());

  opt.leader_endpoint = "tcp://127.0.0.1:4490";
  EXPECT_TRUE(opt.Validate().ok());
  opt.leader_endpoint = "unix:///tmp/zdb-leader.sock";
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(OptionsValidate, LeaderEndpointOnlyMeaningfulForFollowers) {
  net::ServerOptions opt;
  opt.leader_endpoint = "tcp://127.0.0.1:4490";
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());  // standalone
  opt.role = net::ServerRole::kLeader;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.role = net::ServerRole::kFollower;
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(OptionsValidate, ServerStartSurfacesTheTypedStatus) {
  // Start() funnels through Validate(): a bad config fails the same
  // typed way without binding a socket or spawning a thread.
  net::ServerOptions opt;
  opt.workers = 0;
  net::Server server(static_cast<SpatialIndex*>(nullptr), opt);
  const Status s = server.Start();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

}  // namespace
}  // namespace zdb
