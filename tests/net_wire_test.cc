// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Wire-protocol edge cases: strict header decoding, frame reassembly
// under adversarial chunking, bounds-checked payload codecs. Everything
// here must hold under ASan/UBSan — truncated or hostile bytes may never
// over-read.

#include "net/wire.h"

#include <gtest/gtest.h>

#include "common/coding.h"

namespace zdb {
namespace net {
namespace {

std::string PingFrame(uint64_t id) {
  return BuildFrame(Opcode::kPing, 0, id, {});
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

TEST(WireHeader, RoundTrip) {
  FrameHeader h;
  h.payload_len = 123;
  h.opcode = static_cast<uint8_t>(Opcode::kWindow);
  h.flags = kFlagReply;
  h.request_id = 0xDEADBEEFCAFEF00Dull;
  char buf[kHeaderSize];
  EncodeFrameHeader(buf, h);

  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader(buf, &out), WireError::kOk);
  EXPECT_EQ(out.payload_len, 123u);
  EXPECT_EQ(out.opcode, static_cast<uint8_t>(Opcode::kWindow));
  EXPECT_EQ(out.flags, kFlagReply);
  EXPECT_EQ(out.request_id, 0xDEADBEEFCAFEF00Dull);
}

TEST(WireHeader, BadMagicStillYieldsRequestId) {
  FrameHeader h;
  h.opcode = static_cast<uint8_t>(Opcode::kKnn);
  h.request_id = 77;
  char buf[kHeaderSize];
  EncodeFrameHeader(buf, h);
  EncodeFixed32(buf, 0x12345678);  // corrupt the magic

  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader(buf, &out), WireError::kBadMagic);
  // The reply path echoes opcode/request_id from the rejected header.
  EXPECT_EQ(out.opcode, static_cast<uint8_t>(Opcode::kKnn));
  EXPECT_EQ(out.request_id, 77u);
}

TEST(WireHeader, BadVersion) {
  char buf[kHeaderSize];
  EncodeFrameHeader(buf, FrameHeader{});
  EncodeFixed16(buf + 8, kWireVersion + 1);
  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader(buf, &out), WireError::kBadVersion);
}

TEST(WireHeader, PayloadLengthOverflow) {
  FrameHeader h;
  h.payload_len = kMaxPayload + 1;
  char buf[kHeaderSize];
  EncodeFrameHeader(buf, h);
  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader(buf, &out), WireError::kFrameTooLarge);

  // 4 GiB claim: must be rejected from the header alone, before any
  // buffer for the payload could be allocated.
  h.payload_len = 0xFFFFFFFFu;
  EncodeFrameHeader(buf, h);
  EXPECT_EQ(DecodeFrameHeader(buf, &out), WireError::kFrameTooLarge);
}

TEST(FrameAssembler, SingleFrame) {
  FrameAssembler a;
  const std::string frame = BuildFrame(Opcode::kWindow, 0, 9,
                                       EncodeWindowRequest(Rect{0, 0, 1, 1}));
  a.Feed(frame.data(), frame.size());

  Frame out;
  WireError err;
  FrameHeader eh;
  ASSERT_EQ(a.Poll(&out, &err, &eh), FrameAssembler::Next::kFrame);
  EXPECT_EQ(out.header.opcode, static_cast<uint8_t>(Opcode::kWindow));
  EXPECT_EQ(out.header.request_id, 9u);
  EXPECT_EQ(a.Poll(&out, &err, &eh), FrameAssembler::Next::kNeedMore);
  EXPECT_EQ(a.buffered_bytes(), 0u);
}

TEST(FrameAssembler, FrameSplitByteByByte) {
  // The hardest chunking: every byte arrives in its own read, including
  // a split inside the header and inside the payload.
  FrameAssembler a;
  const std::string frame =
      BuildFrame(Opcode::kKnn, 0, 31, EncodeKnnRequest(Point{0.5, 0.5}, 7));
  Frame out;
  WireError err;
  FrameHeader eh;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    a.Feed(frame.data() + i, 1);
    ASSERT_EQ(a.Poll(&out, &err, &eh), FrameAssembler::Next::kNeedMore)
        << "frame complete after only " << i + 1 << " bytes";
  }
  a.Feed(frame.data() + frame.size() - 1, 1);
  ASSERT_EQ(a.Poll(&out, &err, &eh), FrameAssembler::Next::kFrame);
  EXPECT_EQ(out.header.request_id, 31u);

  Point p;
  uint32_t k;
  ASSERT_TRUE(DecodeKnnRequest(out.payload, &p, &k));
  EXPECT_EQ(k, 7u);
  EXPECT_DOUBLE_EQ(p.x, 0.5);
}

TEST(FrameAssembler, ManyFramesInOneRead) {
  FrameAssembler a;
  std::string bytes;
  for (uint64_t id = 0; id < 50; ++id) bytes += PingFrame(id);
  a.Feed(bytes.data(), bytes.size());

  Frame out;
  WireError err;
  FrameHeader eh;
  for (uint64_t id = 0; id < 50; ++id) {
    ASSERT_EQ(a.Poll(&out, &err, &eh), FrameAssembler::Next::kFrame);
    EXPECT_EQ(out.header.request_id, id);
  }
  EXPECT_EQ(a.Poll(&out, &err, &eh), FrameAssembler::Next::kNeedMore);
}

TEST(FrameAssembler, TruncatedFrameNeverCompletes) {
  FrameAssembler a;
  const std::string frame =
      BuildFrame(Opcode::kWindow, 0, 1, EncodeWindowRequest(Rect{0, 0, 1, 1}));
  a.Feed(frame.data(), frame.size() - 1);  // all but the last byte
  Frame out;
  WireError err;
  FrameHeader eh;
  EXPECT_EQ(a.Poll(&out, &err, &eh), FrameAssembler::Next::kNeedMore);
  EXPECT_EQ(a.buffered_bytes(), frame.size() - 1);
}

TEST(FrameAssembler, GarbagePoisonsTheStream) {
  FrameAssembler a;
  std::string garbage(64, '\x5a');
  a.Feed(garbage.data(), garbage.size());
  Frame out;
  WireError err;
  FrameHeader eh;
  ASSERT_EQ(a.Poll(&out, &err, &eh), FrameAssembler::Next::kError);
  EXPECT_EQ(err, WireError::kBadMagic);
  EXPECT_TRUE(a.poisoned());

  // Poisoned for good: even a valid frame fed afterwards is not parsed —
  // resynchronising with a byte stream is not possible.
  const std::string good = PingFrame(5);
  a.Feed(good.data(), good.size());
  EXPECT_EQ(a.Poll(&out, &err, &eh), FrameAssembler::Next::kError);
}

TEST(FrameAssembler, OversizedLengthPoisons) {
  FrameHeader h;
  h.payload_len = kMaxPayload + 1;
  h.opcode = static_cast<uint8_t>(Opcode::kApply);
  h.request_id = 99;
  char buf[kHeaderSize];
  EncodeFrameHeader(buf, h);

  FrameAssembler a;
  a.Feed(buf, sizeof(buf));
  Frame out;
  WireError err;
  FrameHeader eh;
  ASSERT_EQ(a.Poll(&out, &err, &eh), FrameAssembler::Next::kError);
  EXPECT_EQ(err, WireError::kFrameTooLarge);
  // The error reply can still echo who asked.
  EXPECT_EQ(eh.request_id, 99u);
  EXPECT_EQ(eh.opcode, static_cast<uint8_t>(Opcode::kApply));
}

TEST(Requests, WindowRoundTrip) {
  const Rect w{0.125, 0.25, 0.5, 0.75};
  Rect out;
  ASSERT_TRUE(DecodeWindowRequest(EncodeWindowRequest(w), &out));
  EXPECT_DOUBLE_EQ(out.xlo, w.xlo);
  EXPECT_DOUBLE_EQ(out.yhi, w.yhi);
}

TEST(Requests, TruncatedWindowRejected) {
  const std::string enc = EncodeWindowRequest(Rect{0, 0, 1, 1});
  Rect out;
  for (size_t n = 0; n < enc.size(); ++n) {
    EXPECT_FALSE(DecodeWindowRequest(std::string_view(enc).substr(0, n), &out))
        << "accepted a " << n << "-byte prefix";
  }
  // Trailing junk is just as malformed as missing bytes.
  EXPECT_FALSE(DecodeWindowRequest(enc + "x", &out));
}

TEST(Requests, ApplyRoundTrip) {
  WriteBatch batch;
  batch.Insert(Rect{0.1, 0.1, 0.2, 0.2}, 41);
  batch.Erase(7);
  batch.Insert(Rect{0.3, 0.3, 0.4, 0.4});

  WriteBatch out;
  ASSERT_TRUE(DecodeApplyRequest(EncodeApplyRequest(batch), &out));
  ASSERT_EQ(out.ops.size(), 3u);
  EXPECT_EQ(out.ops[0].kind, WriteOp::Kind::kInsert);
  EXPECT_EQ(out.ops[0].payload, 41u);
  EXPECT_DOUBLE_EQ(out.ops[0].mbr.xhi, 0.2);
  EXPECT_EQ(out.ops[1].kind, WriteOp::Kind::kErase);
  EXPECT_EQ(out.ops[1].oid, 7u);
  EXPECT_EQ(out.ops[2].kind, WriteOp::Kind::kInsert);
}

TEST(Requests, ApplyCountOverflowRejected) {
  // A count claiming far more ops than the payload could hold must be
  // rejected before any reserve() — this is the anti-OOM guard.
  std::string enc;
  PutFixed32(&enc, 0x40000000u);  // one billion ops, zero bytes of data
  WriteBatch out;
  EXPECT_FALSE(DecodeApplyRequest(enc, &out));
  EXPECT_TRUE(out.ops.empty() || out.ops.capacity() < 1000u);
}

TEST(Requests, ApplyBadOpKindRejected) {
  std::string enc;
  PutFixed32(&enc, 1);
  enc.push_back('\x02');  // kind 2 does not exist
  WriteBatch out;
  EXPECT_FALSE(DecodeApplyRequest(enc, &out));
}

TEST(Replies, ErrorRoundTrip) {
  const std::string payload =
      EncodeErrorReply(WireError::kBusy, "queue full");
  std::string_view body;
  std::string message;
  EXPECT_EQ(ParseReplyStatus(payload, &body, &message), WireError::kBusy);
  EXPECT_EQ(message, "queue full");
}

TEST(Replies, TruncatedErrorMessageIsMalformed) {
  std::string payload = EncodeErrorReply(WireError::kServerError, "boom");
  payload.pop_back();  // message now shorter than its length prefix
  std::string_view body;
  std::string message;
  EXPECT_EQ(ParseReplyStatus(payload, &body, &message),
            WireError::kMalformed);
  // And the degenerate case: no status byte at all.
  EXPECT_EQ(ParseReplyStatus({}, &body, &message), WireError::kMalformed);
}

TEST(Replies, IdListRoundTrip) {
  const std::vector<ObjectId> ids{3, 1, 4, 1, 5};
  const std::string payload = EncodeIdListReply(10, 12, ids);
  std::string_view body;
  std::string message;
  ASSERT_EQ(ParseReplyStatus(payload, &body, &message), WireError::kOk);

  uint64_t e0, e1;
  std::vector<ObjectId> out;
  ASSERT_TRUE(DecodeIdListReplyBody(body, &e0, &e1, &out));
  EXPECT_EQ(e0, 10u);
  EXPECT_EQ(e1, 12u);
  EXPECT_EQ(out, ids);
}

TEST(Replies, IdListCountOverflowRejected) {
  std::string body;
  PutFixed64(&body, 1);
  PutFixed64(&body, 1);
  PutFixed32(&body, 0x7FFFFFFFu);  // ids "present": two billion
  uint64_t e0, e1;
  std::vector<ObjectId> out;
  EXPECT_FALSE(DecodeIdListReplyBody(body, &e0, &e1, &out));
}

TEST(Replies, KnnRoundTrip) {
  const std::vector<std::pair<ObjectId, double>> hits{{9, 0.25}, {2, 1.5}};
  const std::string payload = EncodeKnnReply(4, 4, hits);
  std::string_view body;
  std::string message;
  ASSERT_EQ(ParseReplyStatus(payload, &body, &message), WireError::kOk);

  uint64_t e0, e1;
  std::vector<std::pair<ObjectId, double>> out;
  ASSERT_TRUE(DecodeKnnReplyBody(body, &e0, &e1, &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 9u);
  EXPECT_DOUBLE_EQ(out[0].second, 0.25);

  // Truncated at every prefix length: reject, never over-read.
  for (size_t n = 0; n < body.size(); ++n) {
    EXPECT_FALSE(DecodeKnnReplyBody(body.substr(0, n), &e0, &e1, &out));
  }
}

TEST(Replies, ApplyAndStatsRoundTrip) {
  std::string_view body;
  std::string message;

  const std::string apply = EncodeApplyReply(33, {100, 101});
  ASSERT_EQ(ParseReplyStatus(apply, &body, &message), WireError::kOk);
  uint64_t epoch;
  std::vector<ObjectId> inserted;
  ASSERT_TRUE(DecodeApplyReplyBody(body, &epoch, &inserted));
  EXPECT_EQ(epoch, 33u);
  EXPECT_EQ(inserted, (std::vector<ObjectId>{100, 101}));

  const std::string stats = EncodeStatsReply("{\"x\":1}");
  ASSERT_EQ(ParseReplyStatus(stats, &body, &message), WireError::kOk);
  std::string json;
  ASSERT_TRUE(DecodeStatsReplyBody(body, &json));
  EXPECT_EQ(json, "{\"x\":1}");
}

TEST(PayloadReaderTest, BoundsChecks) {
  std::string buf;
  PutFixed32(&buf, 7);
  PayloadReader r(buf);
  uint64_t v64;
  EXPECT_FALSE(r.GetU64(&v64));  // only 4 bytes remain
  uint32_t v32;
  EXPECT_TRUE(r.GetU32(&v32));
  EXPECT_EQ(v32, 7u);
  EXPECT_TRUE(r.AtEnd());
  uint8_t v8;
  EXPECT_FALSE(r.GetU8(&v8));  // empty now
}

TEST(PayloadReaderTest, LengthPrefixedStringTruncated) {
  std::string buf;
  PutFixed32(&buf, 100);  // claims 100 bytes...
  buf += "short";         // ...delivers 5
  PayloadReader r(buf);
  std::string s;
  EXPECT_FALSE(r.GetLengthPrefixedString(&s));
}

TEST(Names, OpcodesAndErrors) {
  EXPECT_TRUE(KnownOpcode(static_cast<uint8_t>(Opcode::kWindow)));
  EXPECT_FALSE(KnownOpcode(0));
  EXPECT_FALSE(KnownOpcode(200));
  EXPECT_STREQ(OpcodeName(Opcode::kApply), "apply");
  EXPECT_STREQ(WireErrorName(WireError::kBusy), "busy");
  EXPECT_STREQ(WireErrorName(WireError::kTimedOut), "timed_out");
}

TEST(WireHeader, AcceptsEveryVersionInTheSupportedRange) {
  // Receivers accept [kMinWireVersion, kWireVersion]; anything newer is
  // kBadVersion (the typed reply an old server gives a flagged APPLY).
  char buf[kHeaderSize];
  FrameHeader out;
  for (uint16_t v = kMinWireVersion; v <= kWireVersion; ++v) {
    EncodeFrameHeader(buf, FrameHeader{});
    EncodeFixed16(buf + 8, v);
    EXPECT_EQ(DecodeFrameHeader(buf, &out), WireError::kOk) << v;
    EXPECT_EQ(out.version, v);
  }
  EncodeFrameHeader(buf, FrameHeader{});
  EncodeFixed16(buf + 8, 0);
  EXPECT_EQ(DecodeFrameHeader(buf, &out), WireError::kBadVersion);
}

TEST(StatusMapping, EveryStatusCodeRoundTripsThroughTheWire) {
  // The bidirectional table must be lossless status -> wire -> status,
  // so a typed engine error crosses the protocol without degrading to
  // kServerError/Internal.
  const Status::Code codes[] = {
      Status::Code::kOk,          Status::Code::kNotFound,
      Status::Code::kCorruption,  Status::Code::kInvalidArgument,
      Status::Code::kIOError,     Status::Code::kNoSpace,
      Status::Code::kAlreadyExists, Status::Code::kInternal,
      Status::Code::kBusy,        Status::Code::kUnavailable,
      Status::Code::kTimedOut,
  };
  for (Status::Code c : codes) {
    EXPECT_EQ(WireErrorToStatusCode(StatusCodeToWireError(c)), c)
        << static_cast<int>(c);
  }
  const Status s =
      WireErrorToStatus(StatusCodeToWireError(Status::Code::kTimedOut),
                        "deadline blown");
  EXPECT_TRUE(s.IsTimedOut());
  EXPECT_EQ(s.message(), "deadline blown");
}

TEST(StatusMapping, FramingErrorsCollapseToIOError) {
  // Protocol-level failures have no engine-side Status identity; the
  // client reports them as I/O errors on the connection.
  for (WireError e : {WireError::kMalformed, WireError::kUnknownOpcode,
                      WireError::kBadVersion, WireError::kFrameTooLarge,
                      WireError::kBadMagic}) {
    EXPECT_EQ(WireErrorToStatusCode(e), Status::Code::kIOError)
        << WireErrorName(e);
  }
}

TEST(Requests, ApplyDurabilityFlagRoundTrip) {
  WriteBatch batch;
  batch.Insert(Rect{0.1, 0.1, 0.2, 0.2}, 9);
  batch.Erase(3);

  // kDurable (the default) is byte-identical to the v1 encoding: a
  // flag-free frame decodes on any server.
  EXPECT_EQ(EncodeApplyRequest(batch, Durability::kDurable),
            EncodeApplyRequest(batch));
  WriteBatch out;
  Durability d = Durability::kPublished;
  ASSERT_TRUE(DecodeApplyRequest(EncodeApplyRequest(batch), &out, &d));
  EXPECT_EQ(d, Durability::kDurable);

  // kPublished appends the trailing flag byte; a v2-aware decode
  // recovers it along with the ops.
  const std::string flagged =
      EncodeApplyRequest(batch, Durability::kPublished);
  EXPECT_EQ(flagged.size(), EncodeApplyRequest(batch).size() + 1);
  out = WriteBatch{};
  d = Durability::kDurable;
  ASSERT_TRUE(DecodeApplyRequest(flagged, &out, &d));
  EXPECT_EQ(d, Durability::kPublished);
  ASSERT_EQ(out.ops.size(), 2u);
  EXPECT_EQ(out.ops[1].oid, 3u);
}

TEST(Requests, ApplyDurabilityFlagStrictV1Rejection) {
  // A server parsing a v1 frame (durability == nullptr) must treat the
  // trailing byte as the malformed payload it always was pre-v2.
  WriteBatch batch;
  batch.Insert(Rect{0.1, 0.1, 0.2, 0.2});
  const std::string flagged =
      EncodeApplyRequest(batch, Durability::kPublished);
  WriteBatch out;
  EXPECT_FALSE(DecodeApplyRequest(flagged, &out));

  // An out-of-range flag byte is malformed even for a v2 decode.
  std::string bad = EncodeApplyRequest(batch);
  bad.push_back('\x02');
  Durability d;
  EXPECT_FALSE(DecodeApplyRequest(bad, &out, &d));
}

}  // namespace
}  // namespace net
}  // namespace zdb
