// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Parameterized equivalence sweeps: across every (distribution,
// decomposition policy, query selectivity, ablation mode) combination,
// the four query types of the spatial index must agree exactly with
// brute-force evaluation. This is the repository's central correctness
// property: redundancy, query decomposition, BIGMIN skipping and
// leaf-MBR replication may change COST, never the ANSWER.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/spatial_index.h"
#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

enum class Policy { kSize1, kSize4, kSize16, kError05, kError001 };

DecomposeOptions MakePolicy(Policy p) {
  switch (p) {
    case Policy::kSize1: return DecomposeOptions::SizeBound(1);
    case Policy::kSize4: return DecomposeOptions::SizeBound(4);
    case Policy::kSize16: return DecomposeOptions::SizeBound(16);
    case Policy::kError05: return DecomposeOptions::ErrorBound(0.5);
    case Policy::kError001: return DecomposeOptions::ErrorBound(0.01, 1024);
  }
  return {};
}

std::string PolicyName(Policy p) {
  switch (p) {
    case Policy::kSize1: return "size1";
    case Policy::kSize4: return "size4";
    case Policy::kSize16: return "size16";
    case Policy::kError05: return "error05";
    case Policy::kError001: return "error001";
  }
  return "?";
}

using Param = std::tuple<Distribution, Policy, bool /*bigmin*/,
                         bool /*leaf mbr*/>;

class QueryEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(QueryEquivalence, AllQueryTypesMatchBruteForce) {
  const auto [dist, policy, bigmin, leaf_mbr] = GetParam();

  DataGenOptions dg;
  dg.distribution = dist;
  dg.seed = 1234;
  const auto data = GenerateData(400, dg);

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  SpatialIndexOptions opt;
  opt.data = MakePolicy(policy);
  opt.use_bigmin = bigmin;
  opt.store_mbr_in_leaf = leaf_mbr;
  auto index = SpatialIndex::Create(&pool, opt).value();
  for (const Rect& r : data) ASSERT_TRUE(index->Insert(r).ok());

  // Window + containment + enclosure queries at two selectivities.
  for (double sel : {0.001, 0.02}) {
    QueryGenOptions qopt;
    qopt.seed = 88;
    qopt.aspect_jitter = 0.5;
    for (const Rect& w : GenerateWindows(8, sel, qopt)) {
      auto got = index->WindowQuery(w).value();
      std::sort(got.begin(), got.end());
      std::vector<ObjectId> expect;
      for (size_t i = 0; i < data.size(); ++i) {
        if (data[i].Intersects(w)) expect.push_back(static_cast<ObjectId>(i));
      }
      ASSERT_EQ(got, expect) << "window " << w.ToString();

      auto got_c = index->ContainmentQuery(w).value();
      std::sort(got_c.begin(), got_c.end());
      std::vector<ObjectId> expect_c;
      for (size_t i = 0; i < data.size(); ++i) {
        if (w.Contains(data[i])) expect_c.push_back(static_cast<ObjectId>(i));
      }
      ASSERT_EQ(got_c, expect_c) << "containment " << w.ToString();

      auto got_e = index->EnclosureQuery(w).value();
      std::sort(got_e.begin(), got_e.end());
      std::vector<ObjectId> expect_e;
      for (size_t i = 0; i < data.size(); ++i) {
        if (data[i].Contains(w)) expect_e.push_back(static_cast<ObjectId>(i));
      }
      ASSERT_EQ(got_e, expect_e) << "enclosure " << w.ToString();
    }
  }

  // Point queries.
  for (const Point& p : GeneratePoints(25, 77)) {
    auto got = index->PointQuery(p).value();
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> expect;
    for (size_t i = 0; i < data.size(); ++i) {
      if (data[i].Contains(p)) expect.push_back(static_cast<ObjectId>(i));
    }
    ASSERT_EQ(got, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueryEquivalence,
    ::testing::Combine(
        ::testing::Values(Distribution::kUniformSmall,
                          Distribution::kUniformLarge,
                          Distribution::kClusters, Distribution::kDiagonal,
                          Distribution::kSkewedSizes,
                          Distribution::kContours),
        ::testing::Values(Policy::kSize1, Policy::kSize4, Policy::kSize16,
                          Policy::kError05, Policy::kError001),
        ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      std::string name = DistributionName(std::get<0>(pinfo.param)) + "_" +
                         PolicyName(std::get<1>(pinfo.param));
      if (std::get<2>(pinfo.param)) name += "_bigmin";
      if (std::get<3>(pinfo.param)) name += "_leafmbr";
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ------------------------------------------------------- erase under sweep

using EraseParam = std::tuple<Distribution, Policy>;

class EraseEquivalence : public ::testing::TestWithParam<EraseParam> {};

TEST_P(EraseEquivalence, QueriesStayCorrectUnderChurn) {
  const auto [dist, policy] = GetParam();
  DataGenOptions dg;
  dg.distribution = dist;
  dg.seed = 5;
  const auto data = GenerateData(300, dg);

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  SpatialIndexOptions opt;
  opt.data = MakePolicy(policy);
  auto index = SpatialIndex::Create(&pool, opt).value();

  std::vector<bool> alive(data.size(), false);
  Random rng(6);
  for (int round = 0; round < 4; ++round) {
    // Insert the dead, erase a random half of the living.
    for (size_t i = 0; i < data.size(); ++i) {
      if (!alive[i]) {
        // Re-inserting assigns a fresh oid; to keep oids stable we only
        // insert in the first round and erase/reinsert by... simpler:
        // first round inserts everything.
        if (round == 0) {
          ASSERT_EQ(index->Insert(data[i]).value(),
                    static_cast<ObjectId>(i));
          alive[i] = true;
        }
      }
    }
    for (size_t i = 0; i < data.size(); ++i) {
      if (alive[i] && rng.Bernoulli(0.3)) {
        ASSERT_TRUE(index->Erase(static_cast<ObjectId>(i)).ok());
        alive[i] = false;
      }
    }
    ASSERT_TRUE(index->btree()->CheckInvariants().ok());

    for (const Rect& w : GenerateWindows(6, 0.02, QueryGenOptions{})) {
      auto got = index->WindowQuery(w).value();
      std::sort(got.begin(), got.end());
      std::vector<ObjectId> expect;
      for (size_t i = 0; i < data.size(); ++i) {
        if (alive[i] && data[i].Intersects(w)) {
          expect.push_back(static_cast<ObjectId>(i));
        }
      }
      ASSERT_EQ(got, expect) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EraseEquivalence,
    ::testing::Combine(::testing::Values(Distribution::kUniformLarge,
                                         Distribution::kClusters,
                                         Distribution::kDiagonal),
                       ::testing::Values(Policy::kSize1, Policy::kSize4,
                                         Policy::kError05)),
    [](const ::testing::TestParamInfo<EraseParam>& pinfo) {
      std::string name = DistributionName(std::get<0>(pinfo.param)) + "_" +
                         PolicyName(std::get<1>(pinfo.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ------------------------------------------------- batch-boundary sweep

using BatchParam = std::tuple<Distribution, Policy>;

class BatchEquivalence : public ::testing::TestWithParam<BatchParam> {};

// ApplyBatch must be answer-equivalent to the same ops applied one by
// one: at every write-batch boundary, all query types agree exactly
// with brute force over the live set. This is the single-threaded
// anchor of the concurrent stress harness (stress_mixed_test.cc): the
// same per-boundary oracle, minus the thread interleaving.
TEST_P(BatchEquivalence, QueriesMatchBruteForceAtEveryBatchBoundary) {
  const auto [dist, policy] = GetParam();
  DataGenOptions dg;
  dg.distribution = dist;
  dg.seed = 9;
  const auto data = GenerateData(240, dg);
  DataGenOptions dg2;
  dg2.distribution = dist;
  dg2.seed = 10;
  const auto extra = GenerateData(120, dg2);

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  SpatialIndexOptions opt;
  opt.data = MakePolicy(policy);
  auto index = SpatialIndex::Create(&pool, opt).value();
  for (const Rect& r : data) ASSERT_TRUE(index->Insert(r).ok());

  std::vector<Rect> live_rect(data);
  std::vector<bool> alive(data.size(), true);
  const uint64_t epoch0 = index->write_epoch();

  Random rng(11);
  for (int b = 0; b < 6; ++b) {
    WriteBatch batch;
    std::vector<ObjectId> expect_oids;
    for (int e = 0; e < 20; ++e) {
      const size_t i = rng.Uniform(alive.size());
      if (alive[i]) {
        batch.Erase(static_cast<ObjectId>(i));
        alive[i] = false;
      }
    }
    for (int i = 0; i < 20; ++i) {
      const Rect& r = extra[b * 20 + i];
      batch.Insert(r);
      expect_oids.push_back(static_cast<ObjectId>(live_rect.size()));
      live_rect.push_back(r);
      alive.push_back(true);
    }
    auto inserted = index->ApplyBatch(batch).value();
    EXPECT_EQ(inserted, expect_oids) << "batch " << b;
    // One epoch per batch, not one per op: atomic publication.
    EXPECT_EQ(index->write_epoch() - epoch0,
              static_cast<uint64_t>(b) + 1);
    ASSERT_TRUE(index->btree()->CheckInvariants().ok());

    for (const Rect& w : GenerateWindows(5, 0.02, QueryGenOptions{})) {
      auto got = index->WindowQuery(w).value();
      std::sort(got.begin(), got.end());
      std::vector<ObjectId> expect;
      for (size_t i = 0; i < live_rect.size(); ++i) {
        if (alive[i] && live_rect[i].Intersects(w)) {
          expect.push_back(static_cast<ObjectId>(i));
        }
      }
      ASSERT_EQ(got, expect) << "batch " << b << " window "
                             << w.ToString();
    }
    for (const Point& p : GeneratePoints(8, 13 + b)) {
      auto got = index->PointQuery(p).value();
      std::sort(got.begin(), got.end());
      std::vector<ObjectId> expect;
      for (size_t i = 0; i < live_rect.size(); ++i) {
        if (alive[i] && live_rect[i].Contains(p)) {
          expect.push_back(static_cast<ObjectId>(i));
        }
      }
      ASSERT_EQ(got, expect) << "batch " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchEquivalence,
    ::testing::Combine(::testing::Values(Distribution::kUniformLarge,
                                         Distribution::kClusters,
                                         Distribution::kSkewedSizes),
                       ::testing::Values(Policy::kSize1, Policy::kSize4,
                                         Policy::kError05)),
    [](const ::testing::TestParamInfo<BatchParam>& pinfo) {
      std::string name = DistributionName(std::get<0>(pinfo.param)) + "_" +
                         PolicyName(std::get<1>(pinfo.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace zdb
