// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Decomposition properties: coverage, disjointness, budget compliance,
// error-bound compliance, canonical order, determinism, sibling merging.

#include "decompose/decompose.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace zdb {
namespace {

GridRect RandomRect(Random* rng, uint32_t gbits) {
  const GridCoord max = static_cast<GridCoord>((1u << gbits) - 1);
  GridCoord x1 = static_cast<GridCoord>(rng->Uniform(max + 1));
  GridCoord x2 = static_cast<GridCoord>(rng->Uniform(max + 1));
  GridCoord y1 = static_cast<GridCoord>(rng->Uniform(max + 1));
  GridCoord y2 = static_cast<GridCoord>(rng->Uniform(max + 1));
  return GridRect{std::min(x1, x2), std::min(y1, y2), std::max(x1, x2),
                  std::max(y1, y2)};
}

/// Checks the universal decomposition invariants and returns covered
/// cells (exactly, via per-element rect intersection arithmetic).
void CheckInvariants(const GridRect& rect, const Decomposition& d,
                     uint32_t gbits) {
  ASSERT_FALSE(d.elements.empty());
  ASSERT_EQ(d.object_cells, rect.CellCount());

  uint64_t covered = 0;
  uint64_t covering_rect = 0;
  for (size_t i = 0; i < d.elements.size(); ++i) {
    const ZElement& e = d.elements[i];
    ASSERT_EQ(e.gbits, gbits);
    // Canonical sorted order, pairwise disjoint.
    if (i > 0) {
      ASSERT_TRUE(d.elements[i - 1] < e);
      ASSERT_GT(e.zmin, d.elements[i - 1].zmax());
    }
    // Every element touches the object (no wasted elements).
    ASSERT_GT(e.ToGridRect().IntersectionCells(rect), 0u);
    covered += e.CellCount();
    covering_rect += e.ToGridRect().IntersectionCells(rect);
  }
  ASSERT_EQ(covered, d.covered_cells);
  // Union of elements covers the object exactly once (disjoint + rect
  // fully inside the union).
  ASSERT_EQ(covering_rect, rect.CellCount());
  ASSERT_GE(d.covered_cells, d.object_cells);
}

TEST(Decompose, SizeBoundRespectsBudget) {
  Random rng(21);
  const uint32_t gbits = 8;
  for (int trial = 0; trial < 300; ++trial) {
    const GridRect rect = RandomRect(&rng, gbits);
    for (uint32_t k : {1u, 2u, 3u, 4u, 8u, 16u}) {
      const auto d = Decompose(rect, gbits, DecomposeOptions::SizeBound(k));
      CheckInvariants(rect, d, gbits);
      ASSERT_LE(d.elements.size(), k) << rect.ToString() << " k=" << k;
    }
  }
}

TEST(Decompose, SizeBoundOneIsEnclosing) {
  Random rng(22);
  const uint32_t gbits = 8;
  for (int trial = 0; trial < 200; ++trial) {
    const GridRect rect = RandomRect(&rng, gbits);
    const auto d = Decompose(rect, gbits, DecomposeOptions::SizeBound(1));
    ASSERT_EQ(d.elements.size(), 1u);
    ASSERT_EQ(d.elements[0], ZElement::Enclosing(rect, gbits));
  }
}

TEST(Decompose, ErrorBoundMeetsTarget) {
  Random rng(23);
  const uint32_t gbits = 8;
  for (int trial = 0; trial < 200; ++trial) {
    const GridRect rect = RandomRect(&rng, gbits);
    for (double eps : {1.0, 0.5, 0.1, 0.01}) {
      DecomposeOptions opt = DecomposeOptions::ErrorBound(eps);
      const auto d = Decompose(rect, gbits, opt);
      CheckInvariants(rect, d, gbits);
      // The resolution floor is reachable at gbits=8, so the bound must
      // actually be met (the hard cap of 4096 is far away).
      ASSERT_LE(d.error(), eps + 1e-12)
          << rect.ToString() << " eps=" << eps;
    }
  }
}

TEST(Decompose, ErrorZeroYieldsExactCover) {
  // A dyadic-aligned rect decomposes with zero error and few elements.
  const uint32_t gbits = 6;
  const GridRect aligned{16, 16, 31, 31};  // one quadrant-of-quadrant
  const auto d = Decompose(aligned, gbits, DecomposeOptions::ErrorBound(0.0));
  ASSERT_EQ(d.error(), 0.0);
  ASSERT_EQ(d.elements.size(), 1u);

  // An unaligned rect still reaches zero error at the resolution floor.
  const GridRect odd{3, 5, 9, 11};
  const auto d2 = Decompose(odd, gbits, DecomposeOptions::ErrorBound(0.0));
  ASSERT_EQ(d2.error(), 0.0);
  ASSERT_EQ(d2.covered_cells, odd.CellCount());
}

TEST(Decompose, MonotoneErrorInBudget) {
  Random rng(24);
  const uint32_t gbits = 8;
  for (int trial = 0; trial < 100; ++trial) {
    const GridRect rect = RandomRect(&rng, gbits);
    double prev_error = 1e300;
    for (uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
      const auto d = Decompose(rect, gbits, DecomposeOptions::SizeBound(k));
      ASSERT_LE(d.error(), prev_error + 1e-12) << "k=" << k;
      prev_error = d.error();
    }
  }
}

TEST(Decompose, SingleCellObject) {
  const uint32_t gbits = 8;
  const GridRect cell{100, 200, 100, 200};
  for (uint32_t k : {1u, 8u}) {
    const auto d = Decompose(cell, gbits, DecomposeOptions::SizeBound(k));
    ASSERT_EQ(d.elements.size(), 1u);
    ASSERT_EQ(d.error(), 0.0);
    ASSERT_EQ(d.elements[0].CellCount(), 1u);
  }
}

TEST(Decompose, FullSpaceObject) {
  const uint32_t gbits = 8;
  const GridCoord max = 255;
  const GridRect all{0, 0, max, max};
  const auto d = Decompose(all, gbits, DecomposeOptions::SizeBound(16));
  ASSERT_EQ(d.elements.size(), 1u);  // root covers exactly, no splitting
  ASSERT_EQ(d.elements[0].level, 0);
}

TEST(Decompose, MaxLevelCapsResolution) {
  const uint32_t gbits = 8;
  DecomposeOptions opt = DecomposeOptions::ErrorBound(0.0);
  opt.max_level = 6;
  const GridRect odd{3, 5, 9, 11};
  const auto d = Decompose(odd, gbits, opt);
  for (const ZElement& e : d.elements) {
    ASSERT_LE(e.level, 6u);
  }
  // With capped resolution the error cannot reach zero for this rect.
  ASSERT_GT(d.error(), 0.0);
}

TEST(Decompose, Deterministic) {
  Random rng(25);
  const uint32_t gbits = 10;
  for (int trial = 0; trial < 50; ++trial) {
    const GridRect rect = RandomRect(&rng, gbits);
    const auto a = Decompose(rect, gbits, DecomposeOptions::SizeBound(8));
    const auto b = Decompose(rect, gbits, DecomposeOptions::SizeBound(8));
    ASSERT_EQ(a.elements, b.elements);
  }
}

TEST(Decompose, NoMergeableSiblingsRemain) {
  Random rng(26);
  const uint32_t gbits = 8;
  for (int trial = 0; trial < 200; ++trial) {
    const GridRect rect = RandomRect(&rng, gbits);
    const auto d = Decompose(rect, gbits, DecomposeOptions::SizeBound(16));
    for (size_t i = 0; i + 1 < d.elements.size(); ++i) {
      const ZElement& a = d.elements[i];
      const ZElement& b = d.elements[i + 1];
      const bool siblings = a.level == b.level && a.level > 0 &&
                            a.Parent() == b.Parent() && a.zmin != b.zmin;
      ASSERT_FALSE(siblings) << "unmerged siblings at " << i;
    }
  }
}

TEST(Decompose, RedundancyGrowsWithBudgetForSlimObjects) {
  // A long, thin object straddling the center needs many elements.
  const uint32_t gbits = 10;
  const GridRect slim{10, 500, 1000, 515};
  size_t prev = 0;
  for (uint32_t k : {1u, 4u, 16u, 64u}) {
    const auto d = Decompose(slim, gbits, DecomposeOptions::SizeBound(k));
    ASSERT_GE(d.elements.size(), prev);
    prev = d.elements.size();
  }
  ASSERT_GT(prev, 8u);
}

}  // namespace
}  // namespace zdb
