// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Mixed read/write stress harness: a single writer applies atomic write
// batches (inserts + erases) while parallel readers run window, point
// and kNN queries against the same index. Every concurrent answer is
// cross-checked against a brute-force oracle evaluated at each
// write-batch boundary: because batches publish atomically under the
// index latch, a query that observed write epochs [e0, e1] around its
// execution must match the oracle at EXACTLY one epoch in that range —
// a partially visible batch (or a partially visible z-element set of
// one object) matches no boundary state and fails the check.
//
// The whole workload (data, batches, queries) derives from one root
// seed; failures print the seed and ZDB_STRESS_SEED replays it (see
// workload/seed.h). Designed to run under ThreadSanitizer too; sizes
// are moderate so the instrumented run stays fast. The oracle plumbing
// itself (Workload, the boundary states, the range matchers) is shared
// with the snapshot suite — see tests/oracle_util.h.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/spatial_index.h"
#include "exec/executor.h"
#include "oracle_util.h"
#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/querygen.h"
#include "workload/seed.h"

namespace zdb {
namespace {

using oracle::ExpectedWindow;
using oracle::KnnMatchesState;
using oracle::MakeWorkload;
using oracle::MatchesKnnInRange;
using oracle::MatchesPointInRange;
using oracle::MatchesWindowInRange;
using oracle::OracleState;
using oracle::Workload;

constexpr const char* kSeedEnv = "ZDB_STRESS_SEED";
constexpr uint64_t kDefaultSeed = 0xC0FFEE;

// The default WorkloadShape matches this suite's historical sizing; the
// kNN k rides along for the query calls.
constexpr size_t kKnnK = 5;

std::unique_ptr<SpatialIndex> BuildIndex(BufferPool* pool,
                                         const Workload& w) {
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(8);
  auto index = SpatialIndex::Create(pool, opt).value();
  for (size_t i = 0; i < w.initial.size(); ++i) {
    EXPECT_EQ(index->Insert(w.initial[i]).value(),
              static_cast<ObjectId>(i));
  }
  return index;
}

// ---------------------------------------------------------------- tests

// Executor mixed mode: write batches on the dedicated writer thread,
// query batches on the pool, every answer checked against the oracle at
// the epochs it observed.
TEST(StressMixed, ExecutorMixedWorkloadMatchesOracleAtEveryEpoch) {
  const uint64_t seed = SeedFromEnv(kSeedEnv, kDefaultSeed);
  SCOPED_TRACE(SeedReplayHint(kSeedEnv, seed));
  const Workload w = MakeWorkload(seed);

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 256);
  auto index = BuildIndex(&pool, w);
  // Epochs 0.. are counted from here: setup inserts bumped the counter.
  const uint64_t base = index->write_epoch();

  QueryExecutor exec(index.get(), 4);
  std::vector<MixedRound> rounds(w.batches.size());
  for (size_t b = 0; b < w.batches.size(); ++b) {
    rounds[b].writes = w.batches[b];
    rounds[b].windows = w.windows;
    rounds[b].points = w.points;
    rounds[b].knn_points = w.knn_points;
    rounds[b].knn_k = kKnnK;
  }
  auto results = exec.MixedWorkload(rounds).value();

  ASSERT_EQ(results.size(), w.batches.size());
  for (size_t b = 0; b < results.size(); ++b) {
    EXPECT_EQ(results[b].inserted, w.batch_oids[b]) << "batch " << b;
    for (size_t q = 0; q < w.windows.size(); ++q) {
      const auto [raw0, raw1] = results[b].window_epochs[q];
      const uint64_t e0 = raw0 - base, e1 = raw1 - base;
      EXPECT_TRUE(MatchesWindowInRange(w.states, w.windows[q],
                                       results[b].window_results[q], e0,
                                       e1))
          << "round " << b << " window " << q << " epochs [" << e0 << ","
          << e1 << "]: partially visible batch observed";
    }
    for (size_t q = 0; q < w.points.size(); ++q) {
      const auto [raw0, raw1] = results[b].point_epochs[q];
      EXPECT_TRUE(MatchesPointInRange(w.states, w.points[q],
                                      results[b].point_results[q],
                                      raw0 - base, raw1 - base))
          << "round " << b << " point " << q;
    }
    for (size_t q = 0; q < w.knn_points.size(); ++q) {
      const auto [raw0, raw1] = results[b].knn_epochs[q];
      EXPECT_TRUE(MatchesKnnInRange(w.states, w.knn_points[q], kKnnK,
                                    results[b].knn_results[q],
                                    raw0 - base, raw1 - base))
          << "round " << b << " knn " << q;
    }
  }

  // After the workload the index must be exactly the final oracle state.
  const OracleState& last = w.states.back();
  EXPECT_EQ(index->object_count(), last.size());
  auto all = index->WindowQuery(Rect{0, 0, 1, 1}).value();
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, ExpectedWindow(last, Rect{0, 0, 1, 1}));
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());

  // The writer's batches were all counted racelessly in its own slot.
  EXPECT_EQ(exec.stats().writer.tasks, w.batches.size());
}

// Raw-thread variant: a writer thread applies batches directly through
// ApplyBatch while reader threads hammer the latched public queries.
// Exercises the latch without any executor machinery; also the
// erase-race coverage — batches erase live objects while kNN and window
// queries are mid-flight, and the epoch cross-check rejects any answer
// in which a deleted object was partially visible.
TEST(StressMixed, RawWriterAndReaderThreadsAgreeWithOracle) {
  const uint64_t seed = SeedFromEnv(kSeedEnv, kDefaultSeed + 1);
  SCOPED_TRACE(SeedReplayHint(kSeedEnv, seed));
  const Workload w = MakeWorkload(seed);

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 128);  // smaller pool: reader evictions
  auto index = BuildIndex(&pool, w);
  const uint64_t base = index->write_epoch();

  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (const WriteBatch& batch : w.batches) {
      auto r = index->ApplyBatch(batch);
      if (!r.ok()) {
        ++failures;
        break;
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  constexpr size_t kReaders = 4;
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      // Keep looping until the writer finishes, then one final sweep so
      // every reader also validates the terminal state.
      bool last_pass = false;
      size_t iter = 0;
      while (!last_pass) {
        last_pass = writer_done.load(std::memory_order_acquire);
        const size_t wq = (t + iter) % w.windows.size();
        uint64_t e0 = index->write_epoch() - base;
        auto res = index->WindowQuery(w.windows[wq]);
        uint64_t e1 = index->write_epoch() - base;
        if (!res.ok() ||
            !MatchesWindowInRange(w.states, w.windows[wq], res.value(),
                                  e0, e1)) {
          ++failures;
        }
        const size_t pq = (t + iter) % w.points.size();
        e0 = index->write_epoch() - base;
        auto pres = index->PointQuery(w.points[pq]);
        e1 = index->write_epoch() - base;
        if (!pres.ok() ||
            !MatchesPointInRange(w.states, w.points[pq], pres.value(), e0,
                                 e1)) {
          ++failures;
        }
        const size_t kq = (t + iter) % w.knn_points.size();
        e0 = index->write_epoch() - base;
        auto kres = index->NearestNeighbors(w.knn_points[kq], kKnnK);
        e1 = index->write_epoch() - base;
        if (!kres.ok() ||
            !MatchesKnnInRange(w.states, w.knn_points[kq], kKnnK,
                               kres.value(), e0, e1)) {
          ++failures;
        }
        ++iter;
      }
    });
  }

  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(index->write_epoch() - base, w.batches.size());
  EXPECT_EQ(index->object_count(), w.states.back().size());
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());
}

// Concurrent writers: the exclusive latch serializes competing mutators,
// so racing single-op writers and batch writers never corrupt the tree
// and never expose readers to a partial z-element set.
TEST(StressMixed, CompetingWritersSerializeCleanly) {
  const uint64_t seed = SeedFromEnv(kSeedEnv, kDefaultSeed + 2);
  SCOPED_TRACE(SeedReplayHint(kSeedEnv, seed));

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 128);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto index = SpatialIndex::Create(&pool, opt).value();

  constexpr size_t kWriters = 3;
  constexpr size_t kPerWriter = 80;
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  dg.seed = seed;
  const auto data = GenerateData(kWriters * kPerWriter, dg);

  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      // Writer 0 uses batches, the others single inserts: both paths
      // contend for the same exclusive latch.
      if (t == 0) {
        for (size_t i = 0; i < kPerWriter; i += 8) {
          WriteBatch batch;
          for (size_t j = i; j < i + 8 && j < kPerWriter; ++j) {
            batch.Insert(data[t * kPerWriter + j]);
          }
          if (!index->ApplyBatch(batch).ok()) ++failures;
        }
      } else {
        for (size_t i = 0; i < kPerWriter; ++i) {
          if (!index->Insert(data[t * kPerWriter + i]).ok()) ++failures;
        }
      }
    });
  }
  std::thread reader([&] {
    // Readers ride along; every answer must be internally consistent
    // (no errors, no dead/duplicate oids).
    for (int i = 0; i < 200; ++i) {
      auto r = index->WindowQuery(Rect{0, 0, 1, 1});
      if (!r.ok()) {
        ++failures;
        continue;
      }
      auto ids = r.value();
      std::sort(ids.begin(), ids.end());
      if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
        ++failures;  // duplicate oid: partial/duplicated publication
      }
    }
  });
  for (auto& t : writers) t.join();
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(index->object_count(), kWriters * kPerWriter);
  auto all = index->WindowQuery(Rect{0, 0, 1, 1}).value();
  EXPECT_EQ(all.size(), kWriters * kPerWriter);
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());
}

// The erase-visibility race, isolated: one big "victim" object whose
// decomposition spans many z-elements is erased and re-inserted in a
// tight loop while readers probe small windows strictly inside it and
// run k=1 kNN from its center. A victim with a PARTIALLY visible
// element set would be invisible to probes landing in the missing part
// of its extent while its record is live — an answer that matches no
// epoch. Correct behaviour: at every observed epoch the victim is
// either fully present (every probe finds it, kNN distance 0) or fully
// absent (probes empty, kNN falls through to the far sentinel object).
TEST(StressMixed, ErasedObjectIsFullyPresentOrFullyAbsent) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 128);
  SpatialIndexOptions opt;
  // Fine decomposition: the victim becomes many (element, oid) entries,
  // maximizing the window where a non-atomic writer would expose a
  // partial set.
  opt.data = DecomposeOptions::SizeBound(16);
  auto index = SpatialIndex::Create(&pool, opt).value();

  // One far sentinel (the k=1 answer while the victim is absent), then
  // the victim. Oids: sentinel 0, victim generation g has oid 1 + g.
  const Rect sentinel{0.92, 0.92, 0.95, 0.95};
  const Rect victim{0.3, 0.3, 0.7, 0.7};
  const Point center{0.5, 0.5};
  ASSERT_EQ(index->Insert(sentinel).value(), 0u);
  ASSERT_EQ(index->Insert(victim).value(), 1u);
  const double sentinel_dist = sentinel.DistanceTo(center);

  // Probes scattered over the victim's extent, all strictly inside it
  // and far from the sentinel.
  const std::vector<Rect> probes = {
      {0.31, 0.31, 0.33, 0.33}, {0.67, 0.31, 0.69, 0.33},
      {0.31, 0.67, 0.33, 0.69}, {0.67, 0.67, 0.69, 0.69},
      {0.49, 0.49, 0.51, 0.51}};

  // Epoch -> victim generation. base epoch: victim generation 0 live.
  // Each round is Erase (odd delta: absent) then Insert (even delta:
  // present as generation delta/2).
  const uint64_t base = index->write_epoch();
  auto victim_oid_at = [&](uint64_t epoch) -> int64_t {
    const uint64_t d = epoch - base;
    if (d % 2 != 0) return -1;  // erased
    return static_cast<int64_t>(1 + d / 2);
  };

  constexpr int kRounds = 150;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t i = t;  // stagger the probe sequence per thread
      while (!done.load(std::memory_order_acquire)) {
        const Rect& probe = probes[i++ % probes.size()];
        const uint64_t e0 = index->write_epoch();
        auto r = index->WindowQuery(probe);
        auto n = index->NearestNeighbors(center, 1);
        const uint64_t e1 = index->write_epoch();
        if (!r.ok() || !n.ok() || n.value().size() != 1) {
          ++failures;
          break;
        }
        bool window_ok = false, knn_ok = false;
        for (uint64_t e = e0; e <= e1; ++e) {
          const int64_t oid = victim_oid_at(e);
          const std::vector<ObjectId> expect =
              oid < 0 ? std::vector<ObjectId>{}
                      : std::vector<ObjectId>{static_cast<ObjectId>(oid)};
          if (r.value() == expect) window_ok = true;
          const auto& [got_oid, got_dist] = n.value()[0];
          if (oid >= 0 && got_oid == static_cast<ObjectId>(oid) &&
              got_dist == 0.0) {
            knn_ok = true;
          }
          if (oid < 0 && got_oid == 0 &&
              std::abs(got_dist - sentinel_dist) < 1e-12) {
            knn_ok = true;
          }
        }
        if (!window_ok || !knn_ok) ++failures;
      }
    });
  }

  ObjectId cur = 1;
  for (int round = 0; round < kRounds; ++round) {
    ASSERT_TRUE(index->Erase(cur).ok());
    cur = index->Insert(victim).value();
    ASSERT_EQ(cur, static_cast<ObjectId>(2 + round));
  }
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(index->object_count(), 2u);
  EXPECT_EQ(index->write_epoch() - base, 2u * kRounds);
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());
}

}  // namespace
}  // namespace zdb
