// Copyright (c) zdb authors. Licensed under the MIT license.

#include "geom/clip.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace zdb {
namespace {

Polygon Square(double lo, double hi) {
  return Polygon({{lo, lo}, {hi, lo}, {hi, hi}, {lo, hi}});
}

TEST(Clip, RectFullyInside) {
  const Polygon p = Square(0.0, 1.0);
  const Rect r{0.2, 0.2, 0.5, 0.5};
  EXPECT_NEAR(PolygonRectIntersectionArea(p, r), r.area(), 1e-12);
  EXPECT_TRUE(PolygonContainsRect(p, r));
}

TEST(Clip, PolygonFullyInsideRect) {
  const Polygon p = Square(0.4, 0.6);
  const Rect r{0.0, 0.0, 1.0, 1.0};
  EXPECT_NEAR(PolygonRectIntersectionArea(p, r), p.Area(), 1e-12);
  EXPECT_FALSE(PolygonContainsRect(p, r));
}

TEST(Clip, PartialOverlap) {
  const Polygon p = Square(0.0, 0.5);
  const Rect r{0.25, 0.25, 0.75, 0.75};
  EXPECT_NEAR(PolygonRectIntersectionArea(p, r), 0.25 * 0.25, 1e-12);
  EXPECT_FALSE(PolygonContainsRect(p, r));
}

TEST(Clip, Disjoint) {
  const Polygon p = Square(0.0, 0.2);
  const Rect r{0.5, 0.5, 0.9, 0.9};
  EXPECT_DOUBLE_EQ(PolygonRectIntersectionArea(p, r), 0.0);
  EXPECT_TRUE(ClipPolygonToRect(p, r).empty());
}

TEST(Clip, TriangleAreaExact) {
  // Right triangle clipped by a half-plane-like rect.
  const Polygon tri({{0, 0}, {1, 0}, {0, 1}});
  const Rect left_half{0, 0, 0.5, 1.0};
  // Area of triangle left of x=0.5: 1/2 - (area of right part).
  // Right part is a smaller similar triangle with legs 0.5: area 0.125.
  EXPECT_NEAR(PolygonRectIntersectionArea(tri, left_half), 0.375, 1e-12);
}

TEST(Clip, ConcavePolygonArea) {
  // "L" shape: unit square minus upper-right quadrant.
  const Polygon l({{0, 0}, {1, 0}, {1, 0.5}, {0.5, 0.5}, {0.5, 1}, {0, 1}});
  EXPECT_NEAR(l.Area(), 0.75, 1e-12);
  // The clip that removes the notch region entirely.
  EXPECT_NEAR(PolygonRectIntersectionArea(l, Rect{0.5, 0.5, 1, 1}), 0.0,
              1e-12);
  // A rect spanning the notch: only the lower half is covered.
  EXPECT_NEAR(PolygonRectIntersectionArea(l, Rect{0.6, 0.0, 1.0, 1.0}),
              0.4 * 0.5, 1e-12);
  EXPECT_FALSE(PolygonContainsRect(l, Rect{0.4, 0.4, 0.6, 0.6}));
  EXPECT_TRUE(PolygonContainsRect(l, Rect{0.1, 0.1, 0.4, 0.4}));
}

TEST(Clip, AreaAdditivityProperty) {
  // Splitting the clip rect in half must preserve total area.
  Random rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Point> ring;
    const double cx = rng.NextDouble(), cy = rng.NextDouble();
    const int sides = 3 + static_cast<int>(rng.Uniform(6));
    for (int i = 0; i < sides; ++i) {
      const double ang = 2 * 3.14159265358979 * i / sides;
      const double rad = 0.05 + 0.3 * rng.NextDouble();
      ring.push_back(Point{cx + rad * std::cos(ang),
                           cy + rad * std::sin(ang)});
    }
    const Polygon poly(ring);
    const Rect r{0.1, 0.1, 0.9, 0.9};
    const double mid = 0.5;
    const double whole = PolygonRectIntersectionArea(poly, r);
    const double left =
        PolygonRectIntersectionArea(poly, Rect{r.xlo, r.ylo, mid, r.yhi});
    const double right =
        PolygonRectIntersectionArea(poly, Rect{mid, r.ylo, r.xhi, r.yhi});
    ASSERT_NEAR(whole, left + right, 1e-9);
  }
}

TEST(Clip, DegenerateRect) {
  const Polygon p = Square(0.0, 1.0);
  EXPECT_TRUE(PolygonContainsRect(p, Rect{0.5, 0.5, 0.5, 0.5}));
  EXPECT_FALSE(PolygonContainsRect(p, Rect{1.5, 1.5, 1.5, 1.5}));
}

TEST(PolygonsIntersectTest, AllRelations) {
  const Polygon a = Square(0.0, 0.5);
  EXPECT_TRUE(PolygonsIntersect(a, Square(0.4, 0.9)));   // overlap
  EXPECT_TRUE(PolygonsIntersect(a, Square(0.1, 0.3)));   // containment
  EXPECT_TRUE(PolygonsIntersect(Square(0.1, 0.3), a));   // reversed
  EXPECT_TRUE(PolygonsIntersect(a, Square(0.5, 0.9)));   // corner touch
  EXPECT_FALSE(PolygonsIntersect(a, Square(0.6, 0.9)));  // disjoint
  // Cross shapes with no contained vertices.
  const Polygon horizontal({{0.0, 0.4}, {1.0, 0.4}, {1.0, 0.6}, {0.0, 0.6}});
  const Polygon vertical({{0.4, 0.0}, {0.6, 0.0}, {0.6, 1.0}, {0.4, 1.0}});
  EXPECT_TRUE(PolygonsIntersect(horizontal, vertical));
  EXPECT_FALSE(PolygonsIntersect(Polygon(), a));
}

}  // namespace
}  // namespace zdb
