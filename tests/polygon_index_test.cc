// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Polygon objects in the spatial index: store round-trips, exact-geometry
// query equivalence against brute force, mixed rect/polygon layers,
// erase, join, and kNN.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/spatial_index.h"
#include "rtree/rtree.h"
#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

Polygon RandomBlob(Random* rng, double cx, double cy, double radius) {
  std::vector<Point> ring;
  const int sides = 4 + static_cast<int>(rng->Uniform(5));
  for (int i = 0; i < sides; ++i) {
    const double ang = 2 * 3.14159265358979 * i / sides;
    const double r = radius * rng->UniformDouble(0.5, 1.0);
    ring.push_back(Point{cx + r * std::cos(ang), cy + r * std::sin(ang)});
  }
  return Polygon(std::move(ring));
}

std::vector<Polygon> RandomBlobs(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<Polygon> out;
  while (out.size() < n) {
    Polygon p = RandomBlob(&rng, rng.UniformDouble(0.15, 0.85),
                           rng.UniformDouble(0.15, 0.85),
                           rng.UniformDouble(0.02, 0.12));
    const Rect b = p.Bounds();
    if (b.xlo >= 0 && b.ylo >= 0 && b.xhi < 1 && b.yhi < 1) {
      out.push_back(std::move(p));
    }
  }
  return out;
}

struct Fixture {
  Fixture() : pager(Pager::OpenInMemory(512)), pool(pager.get(), 64) {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(8);
    index = SpatialIndex::Create(&pool, opt).value();
  }
  std::unique_ptr<Pager> pager;
  BufferPool pool;
  std::unique_ptr<SpatialIndex> index;
};

// ------------------------------------------------------------ poly store

TEST(PolygonStore, RoundTripAcrossPages) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 16);
  PolygonStore store(&pool);
  ASSERT_GE(store.max_vertices(), 8u);

  const auto blobs = RandomBlobs(100, 7);
  std::vector<PolyRef> refs;
  for (const Polygon& p : blobs) refs.push_back(store.Insert(p).value());
  EXPECT_GT(store.page_count(), 1u);
  for (size_t i = 0; i < blobs.size(); ++i) {
    const Polygon got = store.Fetch(refs[i]).value();
    ASSERT_EQ(got.size(), blobs[i].size());
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_EQ(got.vertices()[v], blobs[i].vertices()[v]);
    }
  }
}

TEST(PolygonStore, RejectsBadInput) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 16);
  PolygonStore store(&pool);
  EXPECT_TRUE(store.Insert(Polygon()).status().IsInvalidArgument());
  std::vector<Point> huge(store.max_vertices() + 1);
  EXPECT_TRUE(store.Insert(Polygon(huge)).status().IsInvalidArgument());
  EXPECT_TRUE(store.Fetch(0).status().IsNotFound());
}

// ------------------------------------------------------------- the index

TEST(PolygonIndex, WindowAndPointMatchBruteForce) {
  Fixture f;
  const auto blobs = RandomBlobs(200, 8);
  for (const Polygon& p : blobs) {
    ASSERT_TRUE(f.index->InsertPolygon(p).ok());
  }

  for (const Rect& w : GenerateWindows(25, 0.01, QueryGenOptions{})) {
    auto got = f.index->WindowQuery(w).value();
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> expect;
    for (size_t i = 0; i < blobs.size(); ++i) {
      if (blobs[i].Intersects(w)) expect.push_back(static_cast<ObjectId>(i));
    }
    ASSERT_EQ(got, expect) << w.ToString();
  }

  for (const Point& p : GeneratePoints(60, 12)) {
    auto got = f.index->PointQuery(p).value();
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> expect;
    for (size_t i = 0; i < blobs.size(); ++i) {
      if (blobs[i].Contains(p)) expect.push_back(static_cast<ObjectId>(i));
    }
    ASSERT_EQ(got, expect);
  }
}

TEST(PolygonIndex, ExactRefinementBeatsMbr) {
  // A slim diagonal polygon: its MBR intersects a window its geometry
  // misses; the polygon path must return the exact answer.
  Fixture f;
  const Polygon sliver(
      {{0.1, 0.1}, {0.15, 0.1}, {0.9, 0.85}, {0.9, 0.9}, {0.85, 0.9}});
  const ObjectId oid = f.index->InsertPolygon(sliver).value();
  (void)oid;

  const Rect off_diagonal{0.2, 0.7, 0.3, 0.8};  // inside MBR, off geometry
  EXPECT_TRUE(sliver.Bounds().Intersects(off_diagonal));
  EXPECT_FALSE(sliver.Intersects(off_diagonal));
  QueryStats qs;
  EXPECT_TRUE(f.index->WindowQuery(off_diagonal, &qs).value().empty());

  const Rect on_diagonal{0.45, 0.45, 0.55, 0.55};
  EXPECT_EQ(f.index->WindowQuery(on_diagonal).value().size(), 1u);
}

TEST(PolygonIndex, MixedLayersAndErase) {
  Fixture f;
  const auto blobs = RandomBlobs(80, 9);
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  const auto rects = GenerateData(80, dg);

  // Interleave polygon and rect inserts.
  std::vector<bool> is_poly;
  for (size_t i = 0; i < 80; ++i) {
    ASSERT_TRUE(f.index->InsertPolygon(blobs[i]).ok());
    is_poly.push_back(true);
    ASSERT_TRUE(f.index->Insert(rects[i]).ok());
    is_poly.push_back(false);
  }

  auto intersects = [&](size_t oid, const Rect& w) {
    if (is_poly[oid]) return blobs[oid / 2].Intersects(w);
    return rects[oid / 2].Intersects(w);
  };

  for (const Rect& w : GenerateWindows(15, 0.02, QueryGenOptions{})) {
    auto got = f.index->WindowQuery(w).value();
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> expect;
    for (size_t i = 0; i < is_poly.size(); ++i) {
      if (intersects(i, w)) expect.push_back(static_cast<ObjectId>(i));
    }
    ASSERT_EQ(got, expect);
  }

  // Erase all polygons; only rects remain.
  for (size_t i = 0; i < is_poly.size(); i += 2) {
    ASSERT_TRUE(f.index->Erase(static_cast<ObjectId>(i)).ok());
  }
  ASSERT_TRUE(f.index->btree()->CheckInvariants().ok());
  auto got = f.index->WindowQuery(Rect{0, 0, 1, 1}).value();
  EXPECT_EQ(got.size(), 80u);
  for (ObjectId oid : got) EXPECT_EQ(oid % 2, 1u);
}

TEST(PolygonIndex, EnclosureUsesExactGeometry) {
  Fixture f;
  // A ring-like concave polygon ("U") does NOT enclose a window sitting
  // in its notch, although its MBR does.
  const Polygon u({{0.1, 0.1}, {0.9, 0.1}, {0.9, 0.9}, {0.7, 0.9},
                   {0.7, 0.3}, {0.3, 0.3}, {0.3, 0.9}, {0.1, 0.9}});
  ASSERT_TRUE(f.index->InsertPolygon(u).ok());
  const Rect notch{0.45, 0.5, 0.55, 0.6};
  EXPECT_TRUE(u.Bounds().Contains(notch));
  EXPECT_TRUE(f.index->EnclosureQuery(notch).value().empty());
  const Rect base{0.45, 0.15, 0.55, 0.25};
  EXPECT_EQ(f.index->EnclosureQuery(base).value().size(), 1u);
}

TEST(PolygonIndex, RejectedUnderLeafMbrMode) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 16);
  SpatialIndexOptions opt;
  opt.store_mbr_in_leaf = true;
  auto index = SpatialIndex::Create(&pool, opt).value();
  const Polygon tri({{0.1, 0.1}, {0.2, 0.1}, {0.15, 0.2}});
  EXPECT_TRUE(index->InsertPolygon(tri).status().IsInvalidArgument());
}

TEST(PolygonIndex, JoinRefinesExactly) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto a = SpatialIndex::Create(&pool, opt).value();
  auto b = SpatialIndex::Create(&pool, opt).value();

  const auto blobs_a = RandomBlobs(60, 13);
  const auto blobs_b = RandomBlobs(60, 14);
  for (const Polygon& p : blobs_a) ASSERT_TRUE(a->InsertPolygon(p).ok());
  for (const Polygon& p : blobs_b) ASSERT_TRUE(b->InsertPolygon(p).ok());

  auto got = SpatialJoin(a.get(), b.get()).value();
  std::sort(got.begin(), got.end());
  std::vector<std::pair<ObjectId, ObjectId>> expect;
  for (size_t i = 0; i < blobs_a.size(); ++i) {
    for (size_t j = 0; j < blobs_b.size(); ++j) {
      if (PolygonsIntersect(blobs_a[i], blobs_b[j])) {
        expect.emplace_back(static_cast<ObjectId>(i),
                            static_cast<ObjectId>(j));
      }
    }
  }
  EXPECT_EQ(got, expect);
}

// ------------------------------------------------------------------- kNN

TEST(Knn, MatchesBruteForceOnRects) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto index = SpatialIndex::Create(&pool, opt).value();

  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  const auto data = GenerateData(600, dg);
  for (const Rect& r : data) ASSERT_TRUE(index->Insert(r).ok());

  Random rng(15);
  for (int trial = 0; trial < 20; ++trial) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    const size_t k = 1 + rng.Uniform(10);
    auto got = index->NearestNeighbors(p, k).value();
    ASSERT_EQ(got.size(), k);

    // Brute-force k smallest distances.
    std::vector<std::pair<double, ObjectId>> all;
    for (size_t i = 0; i < data.size(); ++i) {
      all.emplace_back(data[i].DistanceTo(p), static_cast<ObjectId>(i));
    }
    std::sort(all.begin(), all.end());
    for (size_t i = 0; i < k; ++i) {
      // Compare distances (ids can tie at equal distance).
      ASSERT_NEAR(got[i].second, all[i].first, 1e-12)
          << "trial " << trial << " i " << i;
    }
    // Sorted ascending.
    for (size_t i = 1; i < k; ++i) {
      ASSERT_LE(got[i - 1].second, got[i].second);
    }
  }
}

TEST(Knn, PolygonDistancesAreExact) {
  Fixture f;
  const Polygon tri({{0.5, 0.5}, {0.7, 0.5}, {0.6, 0.7}});
  const ObjectId oid = f.index->InsertPolygon(tri).value();

  // A point whose MBR distance is 0 but polygon distance is positive
  // (inside the MBR, outside the triangle).
  const Point p{0.52, 0.68};
  ASSERT_TRUE(tri.Bounds().Contains(p));
  ASSERT_FALSE(tri.Contains(p));
  auto got = f.index->NearestNeighbors(p, 1).value();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, oid);
  EXPECT_GT(got[0].second, 0.0);
  EXPECT_NEAR(got[0].second, tri.DistanceTo(p), 1e-12);
}

TEST(Knn, EdgeCases) {
  Fixture f;
  EXPECT_TRUE(f.index->NearestNeighbors(Point{0.5, 0.5}, 3).value().empty());
  ASSERT_TRUE(f.index->Insert(Rect{0.1, 0.1, 0.2, 0.2}).ok());
  // k larger than the population returns everything.
  auto got = f.index->NearestNeighbors(Point{0.9, 0.9}, 5).value();
  EXPECT_EQ(got.size(), 1u);
  // k == 0.
  EXPECT_TRUE(f.index->NearestNeighbors(Point{0.5, 0.5}, 0).value().empty());
  // Query point inside an object: distance 0.
  auto inside = f.index->NearestNeighbors(Point{0.15, 0.15}, 1).value();
  EXPECT_DOUBLE_EQ(inside[0].second, 0.0);
}

TEST(Knn, RTreeMatchesZIndex) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto index = SpatialIndex::Create(&pool, opt).value();
  auto rtree = RTree::Create(&pool, RTreeOptions{}).value();

  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  const auto data = GenerateData(500, dg);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index->Insert(data[i]).ok());
    ASSERT_TRUE(rtree->Insert(data[i], static_cast<ObjectId>(i)).ok());
  }

  Random rng(16);
  for (int trial = 0; trial < 15; ++trial) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    auto za = index->NearestNeighbors(p, 5).value();
    auto ra = rtree->NearestNeighbors(p, 5).value();
    ASSERT_EQ(za.size(), ra.size());
    for (size_t i = 0; i < za.size(); ++i) {
      ASSERT_NEAR(za[i].second, ra[i].second, 1e-12);
    }
  }
}

}  // namespace
}  // namespace zdb
