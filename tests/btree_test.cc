// Copyright (c) zdb authors. Licensed under the MIT license.
//
// B+-tree suite: directed cases plus parameterized random-operation
// equivalence against std::map across page sizes.

#include "btree/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "btree/cursor.h"
#include "common/random.h"
#include "storage/pager.h"

namespace zdb {
namespace {

struct TreeFixture {
  explicit TreeFixture(uint32_t page_size, size_t pool_pages = 128)
      : pager(Pager::OpenInMemory(page_size)),
        pool(pager.get(), pool_pages),
        tree(BTree::Create(&pool).value()) {}

  std::unique_ptr<Pager> pager;
  BufferPool pool;
  std::unique_ptr<BTree> tree;
};

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

TEST(BTree, EmptyTree) {
  TreeFixture f(512);
  EXPECT_EQ(f.tree->size(), 0u);
  EXPECT_EQ(f.tree->height(), 1u);
  EXPECT_TRUE(f.tree->Get("nope").status().IsNotFound());
  EXPECT_TRUE(f.tree->Delete("nope").IsNotFound());
  auto cur = f.tree->SeekFirst().value();
  EXPECT_FALSE(cur.Valid());
  EXPECT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(BTree, InsertRejectsDuplicates) {
  TreeFixture f(512);
  ASSERT_TRUE(f.tree->Insert("a", "1").ok());
  EXPECT_TRUE(f.tree->Insert("a", "2").IsAlreadyExists());
  EXPECT_EQ(f.tree->Get("a").value(), "1");
  EXPECT_EQ(f.tree->size(), 1u);
}

TEST(BTree, PutOverwrites) {
  TreeFixture f(512);
  ASSERT_TRUE(f.tree->Put("a", "1").ok());
  ASSERT_TRUE(f.tree->Put("a", "22").ok());
  EXPECT_EQ(f.tree->Get("a").value(), "22");
  EXPECT_EQ(f.tree->size(), 1u);
  // Overwrite with a much larger value, forcing the remove+reinsert path.
  ASSERT_TRUE(f.tree->Put("a", std::string(100, 'x')).ok());
  EXPECT_EQ(f.tree->Get("a").value(), std::string(100, 'x'));
  EXPECT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(BTree, AscendingInsertSplitsCorrectly) {
  TreeFixture f(256);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(f.tree->Insert(Key(i), "v" + std::to_string(i)).ok()) << i;
  }
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
  EXPECT_GT(f.tree->height(), 2u);
  for (int i = 0; i < n; i += 37) {
    EXPECT_EQ(f.tree->Get(Key(i)).value(), "v" + std::to_string(i));
  }
}

TEST(BTree, DescendingInsertSplitsCorrectly) {
  TreeFixture f(256);
  const int n = 2000;
  for (int i = n - 1; i >= 0; --i) {
    ASSERT_TRUE(f.tree->Insert(Key(i), "v").ok());
  }
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
  EXPECT_EQ(f.tree->size(), static_cast<uint64_t>(n));
}

TEST(BTree, DeleteToEmptyShrinksHeight) {
  TreeFixture f(256);
  const int n = 1500;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(f.tree->Insert(Key(i), "v").ok());
  }
  const uint32_t grown = f.tree->height();
  EXPECT_GT(grown, 1u);
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(f.tree->Delete(Key(i)).ok()) << i;
  }
  EXPECT_EQ(f.tree->size(), 0u);
  EXPECT_EQ(f.tree->height(), 1u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
  // Pages were returned: only root + meta (+free list reuse) remain live.
  EXPECT_LE(f.pager->live_page_count(), 3u);
}

TEST(BTree, CursorScansRange) {
  TreeFixture f(512);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.tree->Insert(Key(2 * i), "v").ok());
  }
  // Seek to a key between entries.
  auto cur = f.tree->Seek(Key(101)).value();
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key().ToString(), Key(102));
  int seen = 0;
  while (cur.Valid() && seen < 10) {
    EXPECT_EQ(cur.key().ToString(), Key(102 + 2 * seen));
    ASSERT_TRUE(cur.Next().ok());
    ++seen;
  }
  // Seek past the end.
  auto end = f.tree->Seek(Key(99999)).value();
  EXPECT_FALSE(end.Valid());
}

TEST(BTree, RejectsOversizedCell) {
  TreeFixture f(256);
  EXPECT_TRUE(f.tree->Insert("k", std::string(1000, 'v'))
                  .IsInvalidArgument());
}

TEST(BTree, ReopenViaMetaPage) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  PageId meta;
  {
    auto tree = BTree::Create(&pool).value();
    meta = tree->meta_page();
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(tree->Insert(Key(i), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(tree->Flush().ok());
  }
  auto tree = BTree::Open(&pool, meta).value();
  EXPECT_EQ(tree->size(), 300u);
  EXPECT_EQ(tree->Get(Key(123)).value(), "v123");
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(BTree, BulkLoadMatchesIncremental) {
  TreeFixture bulk(512);
  const int n = 3000;
  int i = 0;
  ASSERT_TRUE(bulk.tree
                  ->BulkLoad([&](std::string* k, std::string* v) {
                    if (i >= n) return false;
                    *k = Key(i);
                    *v = "v" + std::to_string(i);
                    ++i;
                    return true;
                  })
                  .ok());
  ASSERT_TRUE(bulk.tree->CheckInvariants().ok());
  EXPECT_EQ(bulk.tree->size(), static_cast<uint64_t>(n));
  for (int j = 0; j < n; j += 97) {
    EXPECT_EQ(bulk.tree->Get(Key(j)).value(), "v" + std::to_string(j));
  }
  // Bulk-loaded trees are denser than insert-built ones.
  auto stats = bulk.tree->ComputeStats().value();
  EXPECT_GT(stats.avg_leaf_fill, 0.8);
}

TEST(BTree, BulkLoadRejectsUnsortedInput) {
  TreeFixture f(512);
  int i = 0;
  const char* keys[] = {"b", "a"};
  EXPECT_TRUE(f.tree
                  ->BulkLoad([&](std::string* k, std::string* v) {
                    if (i >= 2) return false;
                    *k = keys[i++];
                    *v = "v";
                    return true;
                  })
                  .IsInvalidArgument());
}

TEST(BTree, BulkLoadEmptyInput) {
  TreeFixture f(512);
  ASSERT_TRUE(
      f.tree->BulkLoad([](std::string*, std::string*) { return false; })
          .ok());
  EXPECT_EQ(f.tree->size(), 0u);
  EXPECT_TRUE(f.tree->CheckInvariants().ok());
}

// ------------------------------------------------ parameterized random ops

class BTreeRandomTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BTreeRandomTest, MatchesStdMapUnderChurn) {
  const uint32_t page_size = GetParam();
  TreeFixture f(page_size);
  std::map<std::string, std::string> model;
  Random rng(page_size);

  for (int op = 0; op < 8000; ++op) {
    const std::string key = Key(static_cast<int>(rng.Uniform(3000)));
    const int kind = static_cast<int>(rng.Uniform(100));
    if (kind < 45) {
      const std::string val = "v" + std::to_string(rng.Next() % 1000);
      Status s = f.tree->Insert(key, val);
      if (model.count(key)) {
        ASSERT_TRUE(s.IsAlreadyExists());
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        model[key] = val;
      }
    } else if (kind < 60) {
      const std::string val = "w" + std::to_string(rng.Next() % 1000);
      ASSERT_TRUE(f.tree->Put(key, val).ok());
      model[key] = val;
    } else if (kind < 85) {
      Status s = f.tree->Delete(key);
      if (model.count(key)) {
        ASSERT_TRUE(s.ok()) << s.ToString();
        model.erase(key);
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else {
      auto got = f.tree->Get(key);
      if (model.count(key)) {
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(got.value(), model[key]);
      } else {
        ASSERT_TRUE(got.status().IsNotFound());
      }
    }
    if (op % 1000 == 999) {
      ASSERT_TRUE(f.tree->CheckInvariants().ok()) << "op " << op;
    }
  }
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
  ASSERT_EQ(f.tree->size(), model.size());

  // Ordered scan equivalence.
  auto cur = f.tree->SeekFirst().value();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(cur.Valid());
    ASSERT_EQ(cur.key().ToString(), k);
    ASSERT_EQ(cur.value().ToString(), v);
    ASSERT_TRUE(cur.Next().ok());
  }
  ASSERT_FALSE(cur.Valid());
}

INSTANTIATE_TEST_SUITE_P(PageSizes, BTreeRandomTest,
                         ::testing::Values(256u, 512u, 1024u, 4096u));

}  // namespace
}  // namespace zdb
