// Copyright (c) zdb authors. Licensed under the MIT license.

#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "rtree/split.h"
#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

struct RTreeFixture {
  explicit RTreeFixture(RTreeOptions opt = {}, uint32_t page_size = 512)
      : pager(Pager::OpenInMemory(page_size)), pool(pager.get(), 64) {
    tree = RTree::Create(&pool, opt).value();
  }
  std::unique_ptr<Pager> pager;
  BufferPool pool;
  std::unique_ptr<RTree> tree;
};

TEST(RTree, RejectsBadOptions) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 8);
  RTreeOptions opt;
  opt.min_fill = 0.0;
  EXPECT_FALSE(RTree::Create(&pool, opt).ok());
  opt.min_fill = 0.7;
  EXPECT_FALSE(RTree::Create(&pool, opt).ok());
}

TEST(RTree, EmptyTree) {
  RTreeFixture f;
  EXPECT_EQ(f.tree->size(), 0u);
  EXPECT_TRUE(f.tree->WindowQuery(Rect{0, 0, 1, 1}).value().empty());
  EXPECT_TRUE(f.tree->Delete(Rect{0, 0, 1, 1}, 0).IsNotFound());
  EXPECT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(RTree, GrowsAndStaysValid) {
  RTreeFixture f;
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  const auto data = GenerateData(3000, dg);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(f.tree->Insert(data[i], static_cast<ObjectId>(i)).ok());
    if (i % 500 == 499) {
      ASSERT_TRUE(f.tree->CheckInvariants().ok());
    }
  }
  EXPECT_GT(f.tree->height(), 2u);
  EXPECT_EQ(f.tree->size(), data.size());
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(RTree, DeleteWithCondensationMatchesModel) {
  RTreeFixture f;
  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  const auto data = GenerateData(1500, dg);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(f.tree->Insert(data[i], static_cast<ObjectId>(i)).ok());
  }
  std::vector<bool> alive(data.size(), true);
  Random rng(1);
  for (int i = 0; i < 1200; ++i) {
    const size_t victim = rng.Uniform(data.size());
    Status s = f.tree->Delete(data[victim], static_cast<ObjectId>(victim));
    if (alive[victim]) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      alive[victim] = false;
    } else {
      ASSERT_TRUE(s.IsNotFound());
    }
    if (i % 200 == 199) {
      ASSERT_TRUE(f.tree->CheckInvariants().ok());
    }
  }
  ASSERT_TRUE(f.tree->CheckInvariants().ok());

  auto got = f.tree->WindowQuery(Rect{0, 0, 1, 1}).value();
  std::sort(got.begin(), got.end());
  std::vector<ObjectId> expect;
  for (size_t i = 0; i < data.size(); ++i) {
    if (alive[i]) expect.push_back(static_cast<ObjectId>(i));
  }
  EXPECT_EQ(got, expect);
}

TEST(RTree, DeleteToEmptyShrinks) {
  RTreeFixture f;
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  const auto data = GenerateData(800, dg);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(f.tree->Insert(data[i], static_cast<ObjectId>(i)).ok());
  }
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(
        f.tree->Delete(data[i], static_cast<ObjectId>(i)).ok());
  }
  EXPECT_EQ(f.tree->size(), 0u);
  EXPECT_EQ(f.tree->height(), 1u);
  EXPECT_TRUE(f.tree->WindowQuery(Rect{0, 0, 1, 1}).value().empty());
}

class RTreeQueryTest
    : public ::testing::TestWithParam<RTreeOptions::Split> {};

TEST_P(RTreeQueryTest, AllQueryTypesMatchBruteForce) {
  RTreeOptions opt;
  opt.split = GetParam();
  RTreeFixture f(opt);
  DataGenOptions dg;
  dg.distribution = Distribution::kSkewedSizes;
  const auto data = GenerateData(1000, dg);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(f.tree->Insert(data[i], static_cast<ObjectId>(i)).ok());
  }

  for (const Rect& w : GenerateWindows(15, 0.01, QueryGenOptions{})) {
    auto got = f.tree->WindowQuery(w).value();
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> expect;
    for (size_t i = 0; i < data.size(); ++i) {
      if (data[i].Intersects(w)) expect.push_back(static_cast<ObjectId>(i));
    }
    ASSERT_EQ(got, expect);

    auto got_c = f.tree->ContainmentQuery(w).value();
    std::sort(got_c.begin(), got_c.end());
    std::vector<ObjectId> expect_c;
    for (size_t i = 0; i < data.size(); ++i) {
      if (w.Contains(data[i])) expect_c.push_back(static_cast<ObjectId>(i));
    }
    ASSERT_EQ(got_c, expect_c);

    auto got_e = f.tree->EnclosureQuery(w).value();
    std::sort(got_e.begin(), got_e.end());
    std::vector<ObjectId> expect_e;
    for (size_t i = 0; i < data.size(); ++i) {
      if (data[i].Contains(w)) expect_e.push_back(static_cast<ObjectId>(i));
    }
    ASSERT_EQ(got_e, expect_e);
  }

  for (const Point& p : GeneratePoints(30, 9)) {
    auto got = f.tree->PointQuery(p).value();
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> expect;
    for (size_t i = 0; i < data.size(); ++i) {
      if (data[i].Contains(p)) expect.push_back(static_cast<ObjectId>(i));
    }
    ASSERT_EQ(got, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Splits, RTreeQueryTest,
                         ::testing::Values(RTreeOptions::Split::kQuadratic,
                                           RTreeOptions::Split::kLinear,
                                           RTreeOptions::Split::kRStar),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case RTreeOptions::Split::kQuadratic:
                               return "quadratic";
                             case RTreeOptions::Split::kLinear:
                               return "linear";
                             case RTreeOptions::Split::kRStar:
                               return "rstar";
                           }
                           return "?";
                         });

// -------------------------------------------------------- split algorithms

std::vector<REntry> RandomEntries(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<REntry> out;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextDouble(), y = rng.NextDouble();
    out.push_back(REntry{Rect{x, y, x + rng.NextDouble() * 0.1,
                              y + rng.NextDouble() * 0.1},
                         static_cast<uint32_t>(i)});
  }
  return out;
}

TEST(Split, AllAlgorithmsPartitionCompletely) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const auto entries = RandomEntries(13, seed);
    for (int alg = 0; alg < 3; ++alg) {
      std::vector<REntry> a, b;
      if (alg == 0) {
        QuadraticSplit(entries, 4, &a, &b);
      } else if (alg == 1) {
        LinearSplit(entries, 4, &a, &b);
      } else {
        RStarSplit(entries, 4, &a, &b);
      }
      EXPECT_EQ(a.size() + b.size(), entries.size());
      EXPECT_GE(a.size(), 4u);
      EXPECT_GE(b.size(), 4u);
      // Every input entry appears exactly once.
      std::vector<uint32_t> refs;
      for (const auto& e : a) refs.push_back(e.ref);
      for (const auto& e : b) refs.push_back(e.ref);
      std::sort(refs.begin(), refs.end());
      for (size_t i = 0; i < refs.size(); ++i) EXPECT_EQ(refs[i], i);
    }
  }
}

TEST(Split, RStarPrefersZeroOverlapDistributions) {
  // Entries sorted along x with a clean gap: the R* split must cut at
  // the gap, producing non-overlapping groups.
  std::vector<REntry> entries;
  for (uint32_t i = 0; i < 6; ++i) {
    entries.push_back(
        REntry{Rect{0.01 * i, 0.0, 0.01 * i + 0.005, 0.5}, i});
    entries.push_back(
        REntry{Rect{0.7 + 0.01 * i, 0.5, 0.705 + 0.01 * i, 1.0}, 100 + i});
  }
  std::vector<REntry> a, b;
  RStarSplit(entries, 3, &a, &b);
  EXPECT_DOUBLE_EQ(GroupBounds(a).IntersectionArea(GroupBounds(b)), 0.0);
}

TEST(Split, QuadraticSeparatesDisjointClusters) {
  // Two tight clusters far apart must be split cleanly.
  std::vector<REntry> entries;
  for (uint32_t i = 0; i < 6; ++i) {
    const double o = i * 0.001;
    entries.push_back(REntry{Rect{0.1 + o, 0.1, 0.11 + o, 0.11}, i});
    entries.push_back(REntry{Rect{0.8 + o, 0.8, 0.81 + o, 0.81}, 100 + i});
  }
  std::vector<REntry> a, b;
  QuadraticSplit(entries, 2, &a, &b);
  const Rect ba = GroupBounds(a);
  const Rect bb = GroupBounds(b);
  EXPECT_FALSE(ba.Intersects(bb));
}

}  // namespace
}  // namespace zdb
