// Copyright (c) zdb authors. Licensed under the MIT license.

#include "btree/node.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "storage/pager.h"

namespace zdb {
namespace {

constexpr uint32_t kPageSize = 512;

class NodeTest : public ::testing::Test {
 protected:
  NodeTest()
      : pager_(Pager::OpenInMemory(kPageSize)),
        pool_(pager_.get(), 8) {}

  Node MakeNode(Node::Type type) {
    PageRef ref = pool_.New().value();
    Node::Init(&ref, type, kPageSize);
    return Node(std::move(ref), kPageSize);
  }

  std::unique_ptr<Pager> pager_;
  BufferPool pool_;
};

TEST_F(NodeTest, EmptyNode) {
  Node leaf = MakeNode(Node::Type::kLeaf);
  EXPECT_TRUE(leaf.is_leaf());
  EXPECT_EQ(leaf.count(), 0);
  EXPECT_EQ(leaf.next(), kInvalidPageId);
  EXPECT_EQ(leaf.UsedBytes(), 0u);
  EXPECT_EQ(leaf.FreeBytes(), kPageSize - Node::kHeaderSize);

  Node internal = MakeNode(Node::Type::kInternal);
  EXPECT_FALSE(internal.is_leaf());
}

TEST_F(NodeTest, LeafInsertAndLookup) {
  Node leaf = MakeNode(Node::Type::kLeaf);
  ASSERT_TRUE(leaf.LeafInsert(0, "banana", "yellow"));
  ASSERT_TRUE(leaf.LeafInsert(0, "apple", "red"));
  ASSERT_TRUE(leaf.LeafInsert(2, "cherry", "dark"));
  ASSERT_EQ(leaf.count(), 3);
  EXPECT_EQ(leaf.Key(0).ToString(), "apple");
  EXPECT_EQ(leaf.Key(1).ToString(), "banana");
  EXPECT_EQ(leaf.Key(2).ToString(), "cherry");
  EXPECT_EQ(leaf.Value(0).ToString(), "red");
  EXPECT_EQ(leaf.Value(2).ToString(), "dark");

  EXPECT_EQ(leaf.LowerBound("banana"), 1);
  EXPECT_EQ(leaf.UpperBound("banana"), 2);
  EXPECT_EQ(leaf.LowerBound("apricot"), 1);
  EXPECT_EQ(leaf.LowerBound(""), 0);
  EXPECT_EQ(leaf.LowerBound("zebra"), 3);
}

TEST_F(NodeTest, RemoveReclaimsSpaceViaCompaction) {
  Node leaf = MakeNode(Node::Type::kLeaf);
  int inserted = 0;
  while (leaf.LeafInsert(leaf.count(),
                         "key" + std::to_string(1000 + inserted),
                         std::string(20, 'v'))) {
    ++inserted;
  }
  ASSERT_GT(inserted, 5);
  const size_t full_free = leaf.FreeBytes();

  // Remove from the middle: space is counted as fragmented...
  leaf.Remove(static_cast<uint16_t>(inserted / 2));
  EXPECT_GT(leaf.FreeBytes(), full_free);
  // ...and reusable through insert (which compacts on demand).
  EXPECT_TRUE(leaf.LeafInsert(leaf.count(), "zzz", std::string(20, 'v')));
}

TEST_F(NodeTest, LeafSetValueGrowAndRestore) {
  Node leaf = MakeNode(Node::Type::kLeaf);
  ASSERT_TRUE(leaf.LeafInsert(0, "k", "small"));
  ASSERT_TRUE(leaf.LeafSetValue(0, "a-bigger-value"));
  EXPECT_EQ(leaf.Value(0).ToString(), "a-bigger-value");

  // Fill the page, then try to grow a value beyond free space: the
  // original entry must survive.
  int i = 0;
  while (leaf.LeafInsert(leaf.count(), "pad" + std::to_string(100 + i),
                         std::string(24, 'p'))) {
    ++i;
  }
  const std::string before = leaf.Value(0).ToString();
  EXPECT_FALSE(leaf.LeafSetValue(0, std::string(400, 'x')));
  EXPECT_EQ(leaf.Value(0).ToString(), before);
}

TEST_F(NodeTest, InternalChildRouting) {
  Node node = MakeNode(Node::Type::kInternal);
  node.set_next(99);  // rightmost child
  ASSERT_TRUE(node.InternalInsert(0, "m", 10));
  ASSERT_TRUE(node.InternalInsert(1, "t", 20));
  ASSERT_EQ(node.count(), 2);
  EXPECT_EQ(node.Child(0), 10u);
  EXPECT_EQ(node.Child(1), 20u);
  EXPECT_EQ(node.Child(2), 99u);

  node.SetChild(0, 11);
  node.SetChild(2, 98);
  EXPECT_EQ(node.Child(0), 11u);
  EXPECT_EQ(node.Child(2), 98u);
  EXPECT_EQ(node.Key(0).ToString(), "m");
}

TEST_F(NodeTest, InsertFailsWhenFull) {
  Node leaf = MakeNode(Node::Type::kLeaf);
  int i = 0;
  while (leaf.LeafInsert(leaf.count(), "key" + std::to_string(1000 + i),
                         std::string(30, 'v'))) {
    ++i;
  }
  EXPECT_FALSE(
      leaf.LeafInsert(0, "another-key", std::string(30, 'v')));
  // Node is still intact.
  EXPECT_EQ(leaf.count(), i);
  EXPECT_EQ(leaf.Key(0).ToString(), "key1000");
}

TEST_F(NodeTest, CompactPreservesOrderAfterChurn) {
  Node leaf = MakeNode(Node::Type::kLeaf);
  Random rng(9);
  std::vector<std::string> keys;
  for (int round = 0; round < 200; ++round) {
    if (!keys.empty() && rng.Bernoulli(0.4)) {
      const size_t victim = rng.Uniform(keys.size());
      leaf.Remove(static_cast<uint16_t>(victim));
      keys.erase(keys.begin() + victim);
    } else {
      const std::string k = "k" + std::to_string(rng.Uniform(100000));
      // Find sorted position; skip duplicates.
      size_t pos = 0;
      bool dup = false;
      for (; pos < keys.size(); ++pos) {
        if (keys[pos] == k) dup = true;
        if (keys[pos] >= k) break;
      }
      if (dup) continue;
      if (leaf.LeafInsert(static_cast<uint16_t>(pos), k, "v")) {
        keys.insert(keys.begin() + pos, k);
      }
    }
  }
  leaf.Compact();
  ASSERT_EQ(leaf.count(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(leaf.Key(static_cast<uint16_t>(i)).ToString(), keys[i]);
  }
}

TEST_F(NodeTest, MaxCellSizeLeavesRoomForFour) {
  const size_t max_cell = Node::MaxCellSize(kPageSize);
  Node leaf = MakeNode(Node::Type::kLeaf);
  const std::string big(max_cell - 8, 'b');
  EXPECT_TRUE(leaf.LeafInsert(0, "a", big));
  EXPECT_TRUE(leaf.LeafInsert(1, "b", big));
  EXPECT_TRUE(leaf.LeafInsert(2, "c", big));
}

}  // namespace
}  // namespace zdb
