// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Multi-threaded read-path stress: N threads hammer one shared index
// (mixed window/point/kNN queries) and one shared buffer pool while the
// answers are checked against single-threaded baselines. Designed to run
// under ThreadSanitizer (build with -DZDB_SANITIZE=thread); sizes are
// kept moderate so the instrumented run stays fast.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "core/spatial_index.h"
#include "exec/executor.h"
#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

constexpr size_t kThreads = 8;

TEST(Concurrent, BufferPoolFetchStress) {
  // Threads re-fetch a fixed page set through a pool with far fewer
  // frames than pages, so every iteration races pins against evictions.
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 32);

  constexpr size_t kPages = 200;
  std::vector<PageId> ids;
  for (size_t i = 0; i < kPages; ++i) {
    auto ref = pool.New().value();
    std::memset(ref.mutable_data(), static_cast<char>(i & 0xff), 512);
    ids.push_back(ref.id());
  }
  ASSERT_TRUE(pool.FlushAll().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
      for (int iter = 0; iter < 400; ++iter) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const size_t i = (rng >> 33) % kPages;
        auto r = pool.Fetch(ids[i]);
        if (!r.ok()) {
          ++failures;  // 8 pins can never exhaust 32 frames
          continue;
        }
        const char expected = static_cast<char>(i & 0xff);
        if (r.value().data()[0] != expected ||
            r.value().data()[511] != expected) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST(Concurrent, MixedQueryStress) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 128);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto index = SpatialIndex::Create(&pool, opt).value();

  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  for (const Rect& r : GenerateData(1200, dg)) {
    ASSERT_TRUE(index->Insert(r).ok());
  }

  const auto windows = GenerateWindows(24, 0.02, QueryGenOptions{});
  const auto points = GeneratePoints(24, 3);
  constexpr size_t kK = 4;

  // Single-threaded baselines.
  std::vector<std::vector<ObjectId>> window_expected, point_expected;
  std::vector<std::vector<std::pair<ObjectId, double>>> knn_expected;
  for (const auto& w : windows) {
    window_expected.push_back(index->WindowQuery(w).value());
  }
  for (const auto& p : points) {
    point_expected.push_back(index->PointQuery(p).value());
    knn_expected.push_back(index->NearestNeighbors(p, kK).value());
  }

  std::atomic<int> mismatches{0}, errors{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the query mix from a different offset so the
      // threads are always on different pages.
      for (size_t n = 0; n < windows.size(); ++n) {
        const size_t i = (n + t * 3) % windows.size();
        auto wr = index->WindowQuery(windows[i]);
        if (!wr.ok()) {
          ++errors;
        } else if (wr.value() != window_expected[i]) {
          ++mismatches;
        }
        auto pr = index->PointQuery(points[i]);
        if (!pr.ok()) {
          ++errors;
        } else if (pr.value() != point_expected[i]) {
          ++mismatches;
        }
        if (i % 4 == t % 4) {  // kNN is pricier; each thread does a share
          auto kr = index->NearestNeighbors(points[i], kK);
          if (!kr.ok()) {
            ++errors;
          } else if (kr.value() != knn_expected[i]) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST(Concurrent, ExecutorBatchesUnderContention) {
  // The executor's worker pool plus an outside reader thread — both
  // paths share the index and buffer pool.
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 96);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto index = SpatialIndex::Create(&pool, opt).value();
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  for (const Rect& r : GenerateData(800, dg)) {
    ASSERT_TRUE(index->Insert(r).ok());
  }

  const auto windows = GenerateWindows(16, 0.05, QueryGenOptions{});
  std::vector<std::vector<ObjectId>> expected;
  for (const auto& w : windows) {
    expected.push_back(index->WindowQuery(w).value());
  }

  QueryExecutor exec(index.get(), 4);
  std::atomic<int> mismatches{0};
  std::thread outsider([&] {
    for (int iter = 0; iter < 6; ++iter) {
      for (size_t i = 0; i < windows.size(); ++i) {
        if (index->WindowQuery(windows[i]).value() != expected[i]) {
          ++mismatches;
        }
      }
    }
  });
  for (int iter = 0; iter < 6; ++iter) {
    auto got = exec.WindowBatch(windows).value();
    for (size_t i = 0; i < windows.size(); ++i) {
      if (got[i] != expected[i]) ++mismatches;
    }
    auto big = exec.ParallelWindowQuery(windows[iter % windows.size()]);
    if (big.value() != expected[iter % windows.size()]) ++mismatches;
  }
  outsider.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Acquiring a second ReaderSection on the same index from one thread is
// a latent deadlock: a writer arriving between the two acquisitions
// parks at the gate, and the writer-preference gate then blocks the
// nested reader forever. Debug builds assert on the nested acquisition
// instead of deadlocking; release builds compile the check out, so the
// test only runs where the assert exists.
TEST(ConcurrentDeathTest, NestedReaderSectionAssertsInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "nested-ReaderSection assert is debug-only";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto index = SpatialIndex::Create(&pool, opt).value();
  ASSERT_TRUE(index->Insert(Rect{0.1, 0.1, 0.2, 0.2}).ok());

  EXPECT_DEATH(
      {
        auto outer = index->ReaderSection();
        auto inner = index->ReaderSection();  // must trip the assert
      },
      "nested ReaderSection");

  // Two sections on *different* indexes from one thread are fine (the
  // pattern SpatialJoin uses); the per-index bookkeeping must not trip.
  auto index2 = SpatialIndex::Create(&pool, opt).value();
  {
    auto a = index->ReaderSection();
    auto b = index2->ReaderSection();
  }
  // And sequential re-acquisition after release is fine too.
  { auto again = index->ReaderSection(); }
#endif
}

// The ASSERT_CAPABILITY annotations on zdb::Mutex / zdb::SharedMutex are
// backed by real holder tracking in every build mode (mutex.h keeps the
// owning thread id in a relaxed atomic). These tests pin down both
// directions of that contract: assertions pass while the lock is held,
// and abort with an attributable "not held" message when it is not.

TEST(LockAssertions, MutexAssertHeldPassesWhileHeld) {
  Mutex mu;
  MutexLock lock(mu);
  mu.AssertHeld();  // must not abort
}

TEST(LockAssertions, SharedMutexAssertsPassWhileHeld) {
  SharedMutex mu;
  {
    WriterLock lock(mu);
    mu.AssertHeld();
    mu.AssertReaderHeld();  // exclusive hold satisfies the shared assert
  }
  {
    ReaderLock lock(mu);
    mu.AssertReaderHeld();
  }
}

TEST(LockAssertions, MutexAssertHeldTracksOwningThread) {
  // The assertion checks the *owning thread*, not just "locked by
  // someone": a hold on another thread must not satisfy it, and the
  // holder must be restored after a CondVar wait round-trip.
  Mutex mu;
  CondVar cv;
  bool woken = false;

  std::thread waiter([&]() NO_THREAD_SAFETY_ANALYSIS {
    MutexLock lock(mu);
    while (!woken) cv.Wait(mu);
    mu.AssertHeld();  // holder restored after the wait
  });

  {
    MutexLock lock(mu);
    mu.AssertHeld();
    woken = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(LockAssertionDeathTest, MutexAssertHeldAbortsUnheld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "not held");
}

TEST(LockAssertionDeathTest, MutexAssertHeldAbortsOtherThreadHold) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu;
        mu.Lock();
        std::thread other([&]() NO_THREAD_SAFETY_ANALYSIS {
          mu.AssertHeld();  // held, but by the spawning thread
        });
        other.join();
        mu.Unlock();
      },
      "not held");
}

TEST(LockAssertionDeathTest, SharedMutexAssertHeldAbortsReaderOnlyHold) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SharedMutex mu;
        ReaderLock lock(mu);
        mu.AssertHeld();  // shared hold does not satisfy exclusive assert
      },
      "not held");
}

TEST(LockAssertionDeathTest, SharedMutexAssertReaderHeldAbortsUnheld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SharedMutex mu;
  EXPECT_DEATH(mu.AssertReaderHeld(), "not held");
}

// A literal double-Unlock is itself a compile error under the Clang
// analysis (Unlock carries RELEASE), so the runtime side of the contract
// has to be exercised from an unanalyzed helper.
void DoubleUnlock() NO_THREAD_SAFETY_ANALYSIS {
  Mutex mu;
  MutexLock lock(mu);
  lock.Unlock();
  lock.Unlock();  // second release: lock no longer held
}

TEST(LockAssertionDeathTest, MutexLockDoubleUnlockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(DoubleUnlock(), "not held");
}

}  // namespace
}  // namespace zdb
