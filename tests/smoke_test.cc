// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Early smoke test for the storage + B+-tree substrate; the full suites
// live in the per-module *_test.cc files.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "btree/cursor.h"
#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace zdb {
namespace {

TEST(Smoke, BTreeRandomOpsMatchStdMap) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  auto tree_r = BTree::Create(&pool);
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  auto& tree = *tree_r.value();

  std::map<std::string, std::string> model;
  Random rng(42);
  for (int i = 0; i < 5000; ++i) {
    const int op = static_cast<int>(rng.Uniform(10));
    std::string key = "k" + std::to_string(rng.Uniform(2000));
    if (op < 6) {
      std::string val = "v" + std::to_string(rng.Next() % 100000);
      Status s = tree.Insert(Slice(key), Slice(val));
      if (model.count(key)) {
        EXPECT_TRUE(s.IsAlreadyExists());
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        model[key] = val;
      }
    } else if (op < 8) {
      Status s = tree.Delete(Slice(key));
      if (model.count(key)) {
        ASSERT_TRUE(s.ok()) << s.ToString();
        model.erase(key);
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    } else {
      auto got = tree.Get(Slice(key));
      if (model.count(key)) {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got.value(), model[key]);
      } else {
        EXPECT_TRUE(got.status().IsNotFound());
      }
    }
    if (i % 500 == 0) {
      Status s = tree.CheckInvariants();
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), model.size());

  // Full ordered scan matches the model.
  auto cur_r = tree.SeekFirst();
  ASSERT_TRUE(cur_r.ok());
  auto cur = std::move(cur_r).value();
  auto it = model.begin();
  while (cur.Valid()) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(cur.key().ToString(), it->first);
    EXPECT_EQ(cur.value().ToString(), it->second);
    ASSERT_TRUE(cur.Next().ok());
    ++it;
  }
  EXPECT_EQ(it, model.end());
}

}  // namespace
}  // namespace zdb
