// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Server integration tests over real loopback sockets: request/reply
// basics, concurrent mixed traffic cross-checked against a brute-force
// oracle at write-epoch granularity (the remote twin of
// stress_mixed_test), graceful shutdown, BUSY backpressure, idle
// timeouts, and hostile bytes arriving over the wire.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "client/client.h"
#include "core/spatial_index.h"
#include "net/socket.h"
#include "net/wire.h"
#include "server/server.h"
#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/querygen.h"
#include "workload/seed.h"

namespace zdb {
namespace net {
namespace {

constexpr const char* kSeedEnv = "ZDB_STRESS_SEED";
constexpr uint64_t kDefaultSeed = 0xFACADE;

using OracleState = std::map<ObjectId, Rect>;

std::vector<ObjectId> ExpectedWindow(const OracleState& st, const Rect& w) {
  std::vector<ObjectId> out;
  for (const auto& [oid, rect] : st) {
    if (rect.Intersects(w)) out.push_back(oid);
  }
  return out;
}

std::vector<ObjectId> ExpectedPoint(const OracleState& st, const Point& p) {
  std::vector<ObjectId> out;
  for (const auto& [oid, rect] : st) {
    if (rect.Contains(p)) out.push_back(oid);
  }
  return out;
}

bool MatchesWindowInRange(const std::vector<OracleState>& states,
                          const Rect& w, const std::vector<ObjectId>& got,
                          uint64_t e0, uint64_t e1) {
  for (uint64_t k = e0; k <= e1 && k < states.size(); ++k) {
    if (got == ExpectedWindow(states[k], w)) return true;
  }
  return false;
}

bool MatchesPointInRange(const std::vector<OracleState>& states,
                         const Point& p, const std::vector<ObjectId>& got,
                         uint64_t e0, uint64_t e1) {
  for (uint64_t k = e0; k <= e1 && k < states.size(); ++k) {
    if (got == ExpectedPoint(states[k], p)) return true;
  }
  return false;
}

bool KnnMatchesState(const OracleState& st, const Point& p, size_t k,
                     const std::vector<std::pair<ObjectId, double>>& got) {
  constexpr double kEps = 1e-9;
  if (got.size() != std::min(k, st.size())) return false;
  double prev = -1.0;
  for (const auto& [oid, dist] : got) {
    auto it = st.find(oid);
    if (it == st.end()) return false;
    if (std::abs(it->second.DistanceTo(p) - dist) > kEps) return false;
    if (dist + kEps < prev) return false;
    prev = dist;
  }
  if (!got.empty()) {
    const double worst = got.back().second;
    std::vector<ObjectId> returned;
    for (const auto& [oid, dist] : got) returned.push_back(oid);
    std::sort(returned.begin(), returned.end());
    for (const auto& [oid, rect] : st) {
      if (std::binary_search(returned.begin(), returned.end(), oid)) {
        continue;
      }
      if (rect.DistanceTo(p) + kEps < worst) return false;
    }
  }
  return true;
}

bool MatchesKnnInRange(const std::vector<OracleState>& states,
                       const Point& p, size_t k,
                       const std::vector<std::pair<ObjectId, double>>& got,
                       uint64_t e0, uint64_t e1) {
  for (uint64_t s = e0; s <= e1 && s < states.size(); ++s) {
    if (KnnMatchesState(states[s], p, k, got)) return true;
  }
  return false;
}

/// In-memory index + server with test-friendly defaults.
struct TestServer {
  std::unique_ptr<Pager> pager;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<SpatialIndex> index;
  std::unique_ptr<Server> server;

  explicit TestServer(ServerOptions opt = {}, size_t pool_pages = 256) {
    pager = Pager::OpenInMemory(512);
    pool = std::make_unique<BufferPool>(pager.get(), pool_pages);
    SpatialIndexOptions iopt;
    iopt.data = DecomposeOptions::SizeBound(8);
    index = SpatialIndex::Create(pool.get(), iopt).value();
    opt.idle_timeout_ms = opt.idle_timeout_ms == 30000 ? 0 : opt.idle_timeout_ms;
    server = std::make_unique<Server>(index.get(), opt);
    const Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  Client Connect() {
    auto c = Client::ConnectTcp("127.0.0.1", server->port());
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(c).value();
  }
};

TEST(NetServer, BasicRequestReplyCycle) {
  TestServer ts;
  Client client = ts.Connect();

  EXPECT_TRUE(client.Ping().ok());

  WriteBatch batch;
  batch.Insert(Rect{0.1, 0.1, 0.3, 0.3});
  batch.Insert(Rect{0.6, 0.6, 0.8, 0.8});
  auto applied = client.Apply(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->inserted, (std::vector<ObjectId>{0, 1}));
  EXPECT_EQ(applied->epoch_after, 1u);

  auto window = client.Window(Rect{0.0, 0.0, 0.5, 0.5});
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->ids, (std::vector<ObjectId>{0}));
  EXPECT_EQ(window->epoch_before, 1u);
  EXPECT_EQ(window->epoch_after, 1u);

  auto point = client.Point(Point{0.7, 0.7});
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->ids, (std::vector<ObjectId>{1}));

  auto nn = client.Nearest(Point{0.2, 0.2}, 2);
  ASSERT_TRUE(nn.ok());
  ASSERT_EQ(nn->hits.size(), 2u);
  EXPECT_EQ(nn->hits[0].first, 0u);

  WriteBatch erase;
  erase.Erase(0);
  ASSERT_TRUE(client.Apply(erase).ok());
  auto after = client.Window(Rect{0.0, 0.0, 0.5, 0.5});
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->ids.empty());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  // Sanity, not schema: the snapshot mentions the op we just ran.
  EXPECT_NE(stats.value().find("\"window\""), std::string::npos);
  EXPECT_NE(stats.value().find("\"write_epoch\":2"), std::string::npos);
}

TEST(NetServer, UnixSocketRoundTrip) {
  const std::string path =
      "/tmp/zdb_net_test_" + std::to_string(::getpid()) + ".sock";
  ServerOptions opt;
  opt.tcp = false;
  opt.unix_path = path;
  TestServer ts(opt);

  auto c = Client::ConnectUnix(path);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  Client client = std::move(c).value();
  EXPECT_TRUE(client.Ping().ok());
  WriteBatch batch;
  batch.Insert(Rect{0.4, 0.4, 0.6, 0.6});
  ASSERT_TRUE(client.Apply(batch).ok());
  auto hits = client.Point(Point{0.5, 0.5});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->ids, (std::vector<ObjectId>{0}));

  ts.server->Stop();
  ::unlink(path.c_str());
}

// The remote twin of stress_mixed_test: one writer client steps the
// index through deterministic batches while reader clients hammer
// window/point/kNN queries over their own connections. Every reply's
// epoch bracket [e0, e1] must contain one batch boundary whose
// brute-force oracle answer matches exactly — a partially visible batch
// matches none and fails.
TEST(NetServer, ConcurrentMixedTrafficMatchesOracle) {
  const uint64_t seed = SeedFromEnv(kSeedEnv, kDefaultSeed);
  SCOPED_TRACE(SeedReplayHint(kSeedEnv, seed));

  constexpr size_t kInitial = 200;
  constexpr size_t kBatches = 10;
  constexpr size_t kInserts = 16;
  constexpr size_t kErases = 10;
  constexpr size_t kKnnK = 4;

  // Deterministic workload + per-epoch oracle states.
  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  dg.seed = seed;
  const auto initial = GenerateData(kInitial, dg);

  std::vector<OracleState> states;
  OracleState state;
  for (size_t i = 0; i < initial.size(); ++i) {
    state[static_cast<ObjectId>(i)] = initial[i];
  }
  states.push_back(state);

  DataGenOptions dg2;
  dg2.distribution = Distribution::kUniformLarge;
  dg2.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  const auto extra = GenerateData(kBatches * kInserts, dg2);

  Random rng(seed + 1);
  std::vector<WriteBatch> batches;
  std::vector<std::vector<ObjectId>> expected_oids;
  ObjectId next_oid = static_cast<ObjectId>(initial.size());
  for (size_t b = 0; b < kBatches; ++b) {
    WriteBatch batch;
    std::vector<ObjectId> oids;
    std::vector<ObjectId> live;
    for (const auto& [oid, rect] : state) live.push_back(oid);
    for (size_t e = 0; e < kErases && !live.empty(); ++e) {
      const size_t pick = rng.Uniform(live.size());
      batch.Erase(live[pick]);
      state.erase(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    for (size_t i = 0; i < kInserts; ++i) {
      const Rect& r = extra[b * kInserts + i];
      batch.Insert(r);
      state[next_oid] = r;
      oids.push_back(next_oid);
      ++next_oid;
    }
    batches.push_back(std::move(batch));
    expected_oids.push_back(std::move(oids));
    states.push_back(state);
  }

  QueryGenOptions qopt;
  qopt.seed = seed + 2;
  auto windows = GenerateWindows(10, 0.01, qopt);
  // Big windows cross the parallel_window_area threshold, so the
  // executor's intra-query path is exercised over the wire too.
  const auto big =
      GenerateWindows(3, 0.08, QueryGenOptions{.seed = seed + 3});
  windows.insert(windows.end(), big.begin(), big.end());
  const auto points = GeneratePoints(8, seed + 4);
  const auto knn_points = GeneratePoints(4, seed + 5);

  ServerOptions opt;
  opt.workers = 6;
  opt.queue_capacity = 256;  // roomy: this test measures correctness
  TestServer ts(opt);
  for (size_t i = 0; i < initial.size(); ++i) {
    ASSERT_EQ(ts.index->Insert(initial[i]).value(),
              static_cast<ObjectId>(i));
  }
  const uint64_t base = ts.index->write_epoch();

  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> reads_done{0};

  auto check = [&](bool ok, const char* what, size_t q) {
    if (!ok) {
      ++failures;
      ADD_FAILURE() << what << " " << q
                    << ": reply matches no epoch state";
    }
  };

  std::thread writer([&] {
    Client client = ts.Connect();
    for (size_t b = 0; b < batches.size(); ++b) {
      auto reply = client.Apply(batches[b]);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      EXPECT_EQ(reply->inserted, expected_oids[b]) << "batch " << b;
      EXPECT_EQ(reply->epoch_after, base + b + 1);
      // A short stagger so readers sample several epochs per batch.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Client client = ts.Connect();
      size_t round = 0;
      while (!writer_done.load() || round == 0) {
        for (size_t q = 0; q < windows.size(); ++q) {
          auto reply = client.Window(windows[q]);
          ASSERT_TRUE(reply.ok()) << reply.status().ToString();
          check(MatchesWindowInRange(states, windows[q], reply->ids,
                                     reply->epoch_before - base,
                                     reply->epoch_after - base),
                "window", q);
          ++reads_done;
        }
        if (r % 2 == 0) {
          for (size_t q = 0; q < points.size(); ++q) {
            auto reply = client.Point(points[q]);
            ASSERT_TRUE(reply.ok()) << reply.status().ToString();
            check(MatchesPointInRange(states, points[q], reply->ids,
                                      reply->epoch_before - base,
                                      reply->epoch_after - base),
                  "point", q);
            ++reads_done;
          }
        } else {
          for (size_t q = 0; q < knn_points.size(); ++q) {
            auto reply = client.Nearest(knn_points[q], kKnnK);
            ASSERT_TRUE(reply.ok()) << reply.status().ToString();
            check(MatchesKnnInRange(states, knn_points[q], kKnnK,
                                    reply->hits,
                                    reply->epoch_before - base,
                                    reply->epoch_after - base),
                  "knn", q);
            ++reads_done;
          }
        }
        ++round;
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(reads_done.load(), 4u * (windows.size() + 1));

  // The final index state must match the last oracle state exactly.
  Client client = ts.Connect();
  auto all = client.Window(Rect{0.0, 0.0, 1.0, 1.0});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->ids, ExpectedWindow(states.back(), Rect{0, 0, 1, 1}));
}

// Graceful shutdown: a request in flight when Stop() begins completes
// and its reply is delivered; frames arriving mid-drain get a typed
// SHUTTING_DOWN; connects after Stop() are refused.
TEST(NetServer, GracefulShutdownDrainsInFlight) {
  ServerOptions opt;
  opt.workers = 2;
  TestServer ts(opt, /*pool_pages=*/16);
  {
    WriteBatch batch;
    DataGenOptions dg;
    dg.seed = 7;
    for (const Rect& r : GenerateData(500, dg)) batch.Insert(r);
    ASSERT_TRUE(ts.index->ApplyBatch(batch).ok());
  }
  // Cache misses now stall: a full-square window takes long enough for
  // Stop() to land while it is executing.
  ts.pager->set_simulated_read_latency_us(2000);

  Client slow = ts.Connect();
  Client late = ts.Connect();
  const uint16_t port = ts.server->port();

  std::atomic<bool> got_reply{false};
  std::thread query([&] {
    auto reply = slow.Window(Rect{0.0, 0.0, 1.0, 1.0});
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply.ok()) {
      EXPECT_EQ(reply->ids.size(), 500u);
      got_reply.store(true);
    }
  });

  // Let the slow query get admitted, then start the drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread stopper([&] { ts.server->Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // A frame arriving while draining is answered, with SHUTTING_DOWN.
  Status s = late.Ping();
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();

  query.join();
  stopper.join();
  EXPECT_TRUE(got_reply.load());
  EXPECT_GE(ts.server->counters().shutdown_rejected.load(), 1u);

  // New connections are refused once the listener is down. (Connect may
  // also succeed-then-EOF on some kernels; accept no served requests.)
  auto refused = Client::ConnectTcp("127.0.0.1", port);
  if (refused.ok()) {
    EXPECT_FALSE(refused.value().Ping().ok());
  }
}

// Backpressure: with one worker, a one-slot queue and slow page reads,
// a burst of pipelined frames must shed load with typed BUSY replies —
// and every frame still gets exactly one reply.
TEST(NetServer, BusyBackpressureUnderSaturation) {
  ServerOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 1;
  TestServer ts(opt, /*pool_pages=*/16);
  {
    WriteBatch batch;
    DataGenOptions dg;
    dg.seed = 11;
    for (const Rect& r : GenerateData(400, dg)) batch.Insert(r);
    ASSERT_TRUE(ts.index->ApplyBatch(batch).ok());
  }
  ts.pager->set_simulated_read_latency_us(1000);

  auto sock = TcpConnect("127.0.0.1", ts.server->port());
  ASSERT_TRUE(sock.ok());

  constexpr int kBurst = 24;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += BuildFrame(Opcode::kWindow, 0, 1000 + i,
                        EncodeWindowRequest(Rect{0.0, 0.0, 1.0, 1.0}));
  }
  ASSERT_TRUE(WriteFully(sock.value(), burst.data(), burst.size()).ok());

  FrameAssembler assembler;
  char buf[16 * 1024];
  int ok_replies = 0, busy_replies = 0, replies = 0;
  while (replies < kBurst) {
    Frame f;
    WireError err;
    FrameHeader eh;
    const auto next = assembler.Poll(&f, &err, &eh);
    if (next == FrameAssembler::Next::kNeedMore) {
      auto n = ReadSome(sock.value(), buf, sizeof(buf));
      ASSERT_TRUE(n.ok());
      ASSERT_GT(n.value(), 0u) << "server closed before all replies";
      assembler.Feed(buf, n.value());
      continue;
    }
    ASSERT_EQ(next, FrameAssembler::Next::kFrame);
    std::string_view body;
    std::string message;
    const WireError status = ParseReplyStatus(f.payload, &body, &message);
    if (status == WireError::kOk) {
      ++ok_replies;
    } else {
      ASSERT_EQ(status, WireError::kBusy) << WireErrorName(status);
      ++busy_replies;
    }
    ++replies;
  }

  // The first frame always finds an empty queue, so at least one
  // succeeds; the burst outran a 1-deep queue, so most were shed.
  EXPECT_GE(ok_replies, 1);
  EXPECT_GT(busy_replies, 0);
  EXPECT_EQ(ok_replies + busy_replies, kBurst);
  EXPECT_EQ(ts.server->counters().busy_rejected.load(),
            static_cast<uint64_t>(busy_replies));
}

// Payload-level garbage (malformed body, unknown opcode) draws a typed
// error but keeps the connection usable; stream-level garbage (bad
// magic) draws one error and then the connection closes.
TEST(NetServer, MalformedPayloadKeepsConnectionUsable) {
  TestServer ts;
  auto sock = TcpConnect("127.0.0.1", ts.server->port());
  ASSERT_TRUE(sock.ok());

  FrameAssembler assembler;
  char buf[4096];
  auto round_trip = [&](const std::string& frame) -> std::pair<WireError, uint64_t> {
    EXPECT_TRUE(WriteFully(sock.value(), frame.data(), frame.size()).ok());
    for (;;) {
      Frame f;
      WireError err;
      FrameHeader eh;
      const auto next = assembler.Poll(&f, &err, &eh);
      if (next == FrameAssembler::Next::kNeedMore) {
        auto n = ReadSome(sock.value(), buf, sizeof(buf));
        EXPECT_TRUE(n.ok());
        if (!n.ok() || n.value() == 0) return {WireError::kOk, 0};
        assembler.Feed(buf, n.value());
        continue;
      }
      EXPECT_EQ(next, FrameAssembler::Next::kFrame);
      std::string_view body;
      std::string message;
      return {ParseReplyStatus(f.payload, &body, &message),
              f.header.request_id};
    }
  };

  // Truncated WINDOW payload: three doubles instead of four.
  std::string short_payload = EncodeWindowRequest(Rect{0, 0, 1, 1});
  short_payload.resize(24);
  auto [err1, id1] =
      round_trip(BuildFrame(Opcode::kWindow, 0, 42, short_payload));
  EXPECT_EQ(err1, WireError::kMalformed);
  EXPECT_EQ(id1, 42u);

  // Unknown opcode 99: typed reply echoing the request id.
  auto [err2, id2] =
      round_trip(BuildFrame(static_cast<Opcode>(99), 0, 43, {}));
  EXPECT_EQ(err2, WireError::kUnknownOpcode);
  EXPECT_EQ(id2, 43u);

  // A frame with the reply flag set is not a request.
  auto [err3, id3] = round_trip(BuildFrame(Opcode::kPing, kFlagReply, 44, {}));
  EXPECT_EQ(err3, WireError::kMalformed);

  // The connection survived all three: a valid request still works.
  auto [err4, id4] = round_trip(BuildFrame(Opcode::kPing, 0, 45, {}));
  EXPECT_EQ(err4, WireError::kOk);
  EXPECT_EQ(id4, 45u);
}

TEST(NetServer, BadMagicClosesConnection) {
  TestServer ts;
  auto sock = TcpConnect("127.0.0.1", ts.server->port());
  ASSERT_TRUE(sock.ok());

  const std::string garbage(64, 'x');
  ASSERT_TRUE(WriteFully(sock.value(), garbage.data(), garbage.size()).ok());

  // One typed BAD_MAGIC error reply, then EOF.
  FrameAssembler assembler;
  char buf[4096];
  bool saw_error_reply = false;
  for (;;) {
    auto n = ReadSome(sock.value(), buf, sizeof(buf));
    ASSERT_TRUE(n.ok());
    if (n.value() == 0) break;  // closed
    assembler.Feed(buf, n.value());
    Frame f;
    WireError err;
    FrameHeader eh;
    if (assembler.Poll(&f, &err, &eh) == FrameAssembler::Next::kFrame) {
      std::string_view body;
      std::string message;
      EXPECT_EQ(ParseReplyStatus(f.payload, &body, &message),
                WireError::kBadMagic);
      saw_error_reply = true;
    }
  }
  EXPECT_TRUE(saw_error_reply);
  EXPECT_GE(ts.server->counters().framing_errors.load(), 1u);
}

TEST(NetServer, IdleConnectionsAreClosed) {
  ServerOptions opt;
  opt.idle_timeout_ms = 100;
  TestServer ts(opt);

  auto sock = TcpConnect("127.0.0.1", ts.server->port());
  ASSERT_TRUE(sock.ok());

  // Say nothing; the server hangs up on us.
  char buf[64];
  auto n = ReadSome(sock.value(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
  EXPECT_GE(ts.server->counters().idle_closed.load(), 1u);

  // An active client with the same timeout is not disturbed.
  Client client = ts.Connect();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(client.Ping().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
}

TEST(NetServer, ShutdownOpcodeSignalsDaemon) {
  TestServer ts;
  EXPECT_FALSE(ts.server->WaitForShutdownRequest(0));
  Client client = ts.Connect();
  ASSERT_TRUE(client.Shutdown().ok());
  EXPECT_TRUE(ts.server->WaitForShutdownRequest(5000));
  ts.server->Stop();
}

// ----------------------------------------------- accept-loop resilience

// Regression: the pre-epoll AcceptLoop exited permanently on the first
// non-EINTR accept failure — one ECONNABORTED (a client connecting and
// resetting before accept) silently killed the listener for the rest of
// the process lifetime. Transient failures must be retried and counted.
TEST(NetServer, AcceptSurvivesTransientErrors) {
  auto faults = std::make_shared<std::atomic<int>>(6);
  ServerOptions opt;
  opt.accept_fault_injection = [faults]() -> int {
    // First six accept attempts fail with a rotating transient errno.
    const int left = faults->fetch_sub(1);
    if (left <= 0) return 0;
    return (left % 2 == 0) ? ECONNABORTED : EPROTO;
  };
  TestServer ts(opt);

  // Every connect still succeeds: the listener outlived the failures.
  for (int i = 0; i < 3; ++i) {
    Client client = ts.Connect();
    EXPECT_TRUE(client.Ping().ok());
  }
  EXPECT_GE(ts.server->counters().accept_retries.load(), 6u);
  EXPECT_EQ(ts.server->counters().accept_backoffs.load(), 0u);
}

// Fd exhaustion (EMFILE) backs the listener off briefly instead of
// spinning or dying; the pending connection is accepted after the
// backoff expires.
TEST(NetServer, AcceptBacksOffOnFdExhaustion) {
  auto faults = std::make_shared<std::atomic<int>>(3);
  ServerOptions opt;
  opt.accept_fault_injection = [faults]() -> int {
    return faults->fetch_sub(1) > 0 ? EMFILE : 0;
  };
  TestServer ts(opt);

  const auto t0 = std::chrono::steady_clock::now();
  Client client = ts.Connect();  // rides out the injected EMFILE window
  EXPECT_TRUE(client.Ping().ok());
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_GE(ts.server->counters().accept_backoffs.load(), 1u);
  EXPECT_GE(ts.server->counters().accept_retries.load(), 1u);
  // Sanity: the backoff is short (10ms steps), not a hang.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

namespace {

size_t OpenFdCount() {
  size_t count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

size_t ProcessThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<size_t>(std::stoul(line.substr(8)));
    }
  }
  return 0;
}

}  // namespace

// Regression: the thread-per-connection server only reaped finished
// connection state on the NEXT accept — a burst of clients that then
// disconnected held their fds and thread handles until someone else
// connected. The epoll front end must release everything as soon as the
// peer goes away, with no further accepts.
TEST(NetServer, ClosedConnectionsReleaseResourcesWithoutNewAccepts) {
  TestServer ts;
  const size_t fds_before = OpenFdCount();

  constexpr int kClients = 32;
  {
    std::vector<Client> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.push_back(ts.Connect());
      EXPECT_TRUE(clients.back().Ping().ok());
    }
    EXPECT_EQ(ts.server->open_connections(),
              static_cast<uint64_t>(kClients));
  }  // all clients hang up here; nobody connects afterwards

  // The server notices the EOFs and releases every connection without a
  // subsequent accept poking the loop.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ts.server->open_connections() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(ts.server->open_connections(), 0u);

  // And the fds really are gone (small slack for unrelated runtime fds).
  const auto fd_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  size_t fds_after = OpenFdCount();
  while (fds_after > fds_before + 2 &&
         std::chrono::steady_clock::now() < fd_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    fds_after = OpenFdCount();
  }
  EXPECT_LE(fds_after, fds_before + 2);
}

// The whole point of the rewrite: connection count no longer implies
// thread count. A pile of concurrent connections is served by the same
// fixed set of net + worker threads.
TEST(NetServer, ThreadCountStaysFlatUnderManyConnections) {
  ServerOptions opt;
  opt.net_threads = 2;
  opt.workers = 4;
  TestServer ts(opt);

  const size_t threads_with_server = ProcessThreadCount();
  ASSERT_GT(threads_with_server, 0u);

  std::vector<Client> clients;
  clients.reserve(128);
  for (int i = 0; i < 128; ++i) {
    clients.push_back(ts.Connect());
  }
  for (auto& c : clients) EXPECT_TRUE(c.Ping().ok());

  // 128 live connections, zero additional threads.
  EXPECT_EQ(ProcessThreadCount(), threads_with_server);
}

// Pipelined flood with a tiny flow-control limit: the server pauses
// reading (read_pauses ticks up) instead of buffering unboundedly, and
// once the client finally drains, every reply arrives exactly once.
// (Per-connection reply ORDER is not part of the contract — pipelined
// requests execute on concurrent workers; clients match on request_id.)
TEST(NetServer, FlowControlPausesReadsAndDeliversEverything) {
  ServerOptions opt;
  opt.out_buffer_limit = 2048;  // a handful of PING replies
  TestServer ts(opt);

  auto sock = TcpConnect("127.0.0.1", ts.server->port());
  ASSERT_TRUE(sock.ok());

  // Pipeline a large burst of PINGs without reading a single reply.
  constexpr uint64_t kPings = 2000;
  std::string burst;
  for (uint64_t i = 0; i < kPings; ++i) {
    burst += BuildFrame(Opcode::kPing, 0, i, {});
  }
  ASSERT_TRUE(WriteFully(sock.value(), burst.data(), burst.size()).ok());

  // Now drain: expect every request id exactly once.
  FrameAssembler assembler;
  std::vector<char> buf(64 * 1024);
  std::vector<bool> seen(kPings, false);
  uint64_t received = 0;
  while (received < kPings) {
    Frame f;
    WireError err;
    FrameHeader eh;
    const auto next = assembler.Poll(&f, &err, &eh);
    if (next == FrameAssembler::Next::kNeedMore) {
      auto n = ReadSome(sock.value(), buf.data(), buf.size());
      ASSERT_TRUE(n.ok()) << n.status().ToString();
      ASSERT_GT(n.value(), 0u) << "server hung up mid-drain after "
                               << received << " replies";
      assembler.Feed(buf.data(), n.value());
      continue;
    }
    ASSERT_EQ(next, FrameAssembler::Next::kFrame);
    ASSERT_LT(f.header.request_id, kPings);
    ASSERT_FALSE(seen[f.header.request_id])
        << "duplicate reply for id " << f.header.request_id;
    seen[f.header.request_id] = true;
    ++received;
  }
  EXPECT_EQ(received, kPings);
  // With ~2000 pipelined replies against a 2KB cap, flow control must
  // have engaged at least once.
  EXPECT_GE(ts.server->counters().read_pauses.load(), 1u);
}

}  // namespace
}  // namespace net
}  // namespace zdb
