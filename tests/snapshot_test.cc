// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Snapshot-isolation oracle suite for epoch-pinned reads (the latch-free
// query path of spatial_index.h). The properties under test:
//
//   * repeatability — a query re-run at the same EpochPin returns the
//     byte-identical answer no matter how much writer churn happened in
//     between;
//   * oracle agreement — the answer at a pin taken after k batches is
//     exactly the brute-force oracle state k (tests/oracle_util.h), not
//     merely *some* boundary state;
//   * writer progress — a parked long-lived pin never blocks writers;
//   * reclamation — version chains and metas retained for a pin are
//     reclaimed once the minimum pinned epoch passes (EpochManager GC);
//   * misuse aborts — EpochPin double release, cross-thread release and
//     a pin outliving its manager die loudly instead of corrupting the
//     pin accounting;
//   * plan-hook integrity — the executor's NO_THREAD_SAFETY_ANALYSIS
//     plan hooks, run under one shared pin across many worker threads,
//     cannot observe a torn epoch.
//
// Deterministic workloads derive from ZDB_STRESS_SEED like the
// stress_mixed suite; thread tests are sized to stay fast under TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/epoch.h"
#include "core/spatial_index.h"
#include "exec/executor.h"
#include "oracle_util.h"
#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/seed.h"
#include "zdb/db.h"

namespace zdb {
namespace {

using oracle::ExpectedPoint;
using oracle::ExpectedWindow;
using oracle::KnnMatchesState;
using oracle::MakeWorkload;
using oracle::MatchesWindowInRange;
using oracle::OracleState;
using oracle::Workload;
using oracle::WorkloadShape;

constexpr const char* kSeedEnv = "ZDB_STRESS_SEED";
constexpr uint64_t kDefaultSeed = 0x5EED5;
constexpr size_t kKnnK = 4;

/// Smaller than the stress_mixed default: every pinned reader replays
/// the full query set against its boundary state many times.
WorkloadShape SnapshotShape() {
  WorkloadShape s;
  s.initial_objects = 200;
  s.batches = 8;
  s.inserts_per_batch = 16;
  s.erases_per_batch = 12;
  s.window_queries = 10;
  s.point_queries = 8;
  s.knn_queries = 4;
  s.knn_k = kKnnK;
  return s;
}

std::unique_ptr<SpatialIndex> BuildIndex(BufferPool* pool,
                                         const Workload& w) {
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(8);
  auto index = SpatialIndex::Create(pool, opt).value();
  for (size_t i = 0; i < w.initial.size(); ++i) {
    EXPECT_EQ(index->Insert(w.initial[i]).value(),
              static_cast<ObjectId>(i));
  }
  return index;
}

/// Runs the workload's full query set at `pin` and checks every answer
/// against the oracle state for the pinned boundary. Returns false (and
/// records gtest failures) on any mismatch.
bool CheckPinAgainstState(SpatialIndex* index, const EpochPin& pin,
                          const Workload& w, const OracleState& st) {
  bool ok = true;
  for (const Rect& win : w.windows) {
    auto r = index->WindowQueryAt(pin, win);
    if (!r.ok() || r.value() != ExpectedWindow(st, win)) ok = false;
  }
  for (const Point& p : w.points) {
    auto r = index->PointQueryAt(pin, p);
    if (!r.ok() || r.value() != ExpectedPoint(st, p)) ok = false;
  }
  for (const Point& p : w.knn_points) {
    auto r = index->NearestNeighborsAt(pin, p, kKnnK);
    if (!r.ok() || !KnnMatchesState(st, p, kKnnK, r.value())) ok = false;
  }
  return ok;
}

// ------------------------------------------------------- oracle checks

// Single-threaded determinism: pin every batch boundary, apply all the
// batches, then verify each pin still answers exactly its boundary's
// brute-force state — including the containment/enclosure variants —
// and that re-reads are byte-identical.
TEST(Snapshot, EveryPinnedBoundaryMatchesBruteForceOracle) {
  const uint64_t seed = SeedFromEnv(kSeedEnv, kDefaultSeed);
  SCOPED_TRACE(SeedReplayHint(kSeedEnv, seed));
  const Workload w = MakeWorkload(seed, SnapshotShape());

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 128);  // small pool: forces CoW saves
  auto index = BuildIndex(&pool, w);
  ASSERT_TRUE(index->EnableSnapshots().ok());
  const uint64_t base = index->write_epoch();

  // Pin boundary k, then apply batch k to step to boundary k+1.
  std::vector<EpochPin> pins;
  pins.push_back(index->PinEpoch());
  for (const WriteBatch& batch : w.batches) {
    ASSERT_TRUE(index->ApplyBatch(batch).ok());
    pins.push_back(index->PinEpoch());
  }
  ASSERT_EQ(pins.size(), w.states.size());

  for (size_t k = 0; k < pins.size(); ++k) {
    ASSERT_EQ(pins[k].epoch() - base, k);
    EXPECT_TRUE(CheckPinAgainstState(index.get(), pins[k], w, w.states[k]))
        << "boundary " << k;
    // Byte-identical re-read, plus the window-shaped variants.
    for (const Rect& win : w.windows) {
      const auto first = index->WindowQueryAt(pins[k], win).value();
      EXPECT_EQ(index->WindowQueryAt(pins[k], win).value(), first);
      auto contain = index->ContainmentQueryAt(pins[k], win).value();
      auto enclose = index->EnclosureQueryAt(pins[k], win).value();
      // Containment answers are a subset of intersection answers; both
      // must be stable across re-reads too.
      EXPECT_TRUE(std::includes(first.begin(), first.end(),
                                contain.begin(), contain.end()));
      EXPECT_EQ(index->ContainmentQueryAt(pins[k], win).value(), contain);
      EXPECT_EQ(index->EnclosureQueryAt(pins[k], win).value(), enclose);
    }
  }

  // The live (unpinned) path must answer the final state.
  EXPECT_TRUE(index->snapshots_enabled());
  auto all = index->WindowQuery(Rect{0, 0, 1, 1}).value();
  EXPECT_EQ(all, ExpectedWindow(w.states.back(), Rect{0, 0, 1, 1}));
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());
}

// The auto-pin wrappers (public queries with snapshots enabled) must
// still satisfy the epoch-bracket oracle check the latched path did:
// each answer equals the oracle at exactly one committed boundary.
TEST(SnapshotStress, AutoPinnedQueriesMatchOracleUnderChurn) {
  const uint64_t seed = SeedFromEnv(kSeedEnv, kDefaultSeed + 1);
  SCOPED_TRACE(SeedReplayHint(kSeedEnv, seed));
  const Workload w = MakeWorkload(seed, SnapshotShape());

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 128);
  auto index = BuildIndex(&pool, w);
  ASSERT_TRUE(index->EnableSnapshots().ok());
  const uint64_t base = index->write_epoch();

  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (const WriteBatch& batch : w.batches) {
      if (!index->ApplyBatch(batch).ok()) {
        ++failures;
        break;
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  constexpr size_t kReaders = 4;
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      bool last_pass = false;
      size_t iter = 0;
      while (!last_pass) {
        last_pass = writer_done.load(std::memory_order_acquire);
        const size_t wq = (t + iter) % w.windows.size();
        const uint64_t e0 = index->write_epoch() - base;
        auto res = index->WindowQuery(w.windows[wq]);
        const uint64_t e1 = index->write_epoch() - base;
        if (!res.ok() ||
            !MatchesWindowInRange(w.states, w.windows[wq], res.value(),
                                  e0, e1)) {
          ++failures;
        }
        ++iter;
      }
    });
  }

  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(index->write_epoch() - base, w.batches.size());
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());
}

// Concurrent pinned readers under live writer churn: each reader pins
// whatever boundary is current, computes its first answers, then
// re-reads the same queries in a loop — every re-read must be
// byte-identical to the first AND equal to the oracle at the pinned
// boundary, regardless of what the writer does meanwhile.
TEST(SnapshotStress, PinnedReadersRereadIdenticallyUnderWriterChurn) {
  const uint64_t seed = SeedFromEnv(kSeedEnv, kDefaultSeed + 2);
  SCOPED_TRACE(SeedReplayHint(kSeedEnv, seed));
  const Workload w = MakeWorkload(seed, SnapshotShape());

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);  // tiny pool: constant eviction
  auto index = BuildIndex(&pool, w);
  ASSERT_TRUE(index->EnableSnapshots().ok());
  const uint64_t base = index->write_epoch();

  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};

  constexpr size_t kReaders = 4;
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      size_t pins_checked = 0;
      while (!writer_done.load(std::memory_order_acquire) ||
             pins_checked == 0) {
        const EpochPin pin = index->PinEpoch();
        const uint64_t k = pin.epoch() - base;
        if (k >= w.states.size()) {
          ++failures;  // pinned an epoch no batch ever published
          break;
        }
        const OracleState& st = w.states[k];
        // First read of a rotating query subset...
        const Rect& win = w.windows[(t + pins_checked) % w.windows.size()];
        const Point& pt = w.points[(t + pins_checked) % w.points.size()];
        const Point& kp =
            w.knn_points[(t + pins_checked) % w.knn_points.size()];
        auto w0 = index->WindowQueryAt(pin, win);
        auto p0 = index->PointQueryAt(pin, pt);
        auto n0 = index->NearestNeighborsAt(pin, kp, kKnnK);
        if (!w0.ok() || !p0.ok() || !n0.ok() ||
            w0.value() != ExpectedWindow(st, win) ||
            p0.value() != ExpectedPoint(st, pt) ||
            !KnnMatchesState(st, kp, kKnnK, n0.value())) {
          ++failures;
        }
        // ...then re-reads at the same pin: byte-identical every time.
        for (int rep = 0; rep < 3; ++rep) {
          auto w1 = index->WindowQueryAt(pin, win);
          auto p1 = index->PointQueryAt(pin, pt);
          auto n1 = index->NearestNeighborsAt(pin, kp, kKnnK);
          if (!w1.ok() || w1.value() != w0.value() || !p1.ok() ||
              p1.value() != p0.value() || !n1.ok() ||
              n1.value() != n0.value()) {
            ++failures;
          }
        }
        ++pins_checked;
      }
      EXPECT_GT(pins_checked, 0u);
    });
  }

  std::thread writer([&] {
    for (const WriteBatch& batch : w.batches) {
      if (!index->ApplyBatch(batch).ok()) {
        ++failures;
        break;
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());
}

// A parked long-lived pin must not block writers: the whole batch
// sequence completes while the pin is held (a latched long scan would
// have wedged the writer-preference gate for its duration), and the
// parked pin still answers its original boundary afterwards.
TEST(SnapshotStress, ParkedPinNeverBlocksWriterProgress) {
  const uint64_t seed = SeedFromEnv(kSeedEnv, kDefaultSeed + 3);
  SCOPED_TRACE(SeedReplayHint(kSeedEnv, seed));
  const Workload w = MakeWorkload(seed, SnapshotShape());

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 128);
  auto index = BuildIndex(&pool, w);
  ASSERT_TRUE(index->EnableSnapshots().ok());
  const uint64_t base = index->write_epoch();

  // Park the pin and take its baseline answers.
  const EpochPin pin = index->PinEpoch();
  ASSERT_EQ(pin.epoch(), base);
  std::vector<std::vector<ObjectId>> before;
  for (const Rect& win : w.windows) {
    before.push_back(index->WindowQueryAt(pin, win).value());
  }

  // Writer runs to completion with the pin parked. A deadlock here is a
  // regression and fails via the suite's ctest timeout.
  std::thread writer([&] {
    for (const WriteBatch& batch : w.batches) {
      ASSERT_TRUE(index->ApplyBatch(batch).ok());
    }
  });
  writer.join();
  EXPECT_EQ(index->write_epoch() - base, w.batches.size());

  // The parked pin is unmoved by all that churn.
  for (size_t q = 0; q < w.windows.size(); ++q) {
    EXPECT_EQ(index->WindowQueryAt(pin, w.windows[q]).value(), before[q])
        << "window " << q;
  }
  EXPECT_TRUE(CheckPinAgainstState(index.get(), pin, w, w.states[0]));
  // And the live path sees the final state, not the pinned one.
  auto all = index->WindowQuery(Rect{0, 0, 1, 1}).value();
  EXPECT_EQ(all, ExpectedWindow(w.states.back(), Rect{0, 0, 1, 1}));
}

// --------------------------------------------------------- reclamation

// Version chains retained for a parked pin are reclaimed once the pin
// is released and the floor passes: live count and bytes drop, the
// reclaimed counter rises, and a fresh pin at the current epoch still
// works (it needs no chains at all).
TEST(SnapshotGc, ReleasedPinAllowsVersionReclamation) {
  const uint64_t seed = SeedFromEnv(kSeedEnv, kDefaultSeed + 4);
  const Workload w = MakeWorkload(seed, SnapshotShape());

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  auto index = BuildIndex(&pool, w);
  ASSERT_TRUE(index->EnableSnapshots().ok());

  EpochPin parked = index->PinEpoch();
  for (const WriteBatch& batch : w.batches) {
    ASSERT_TRUE(index->ApplyBatch(batch).ok());
  }

  // The parked pin holds the floor: a GC cycle reclaims nothing below
  // it no matter how often it runs.
  index->epochs()->RunGcCycle();
  const PageVersionStats held = index->version_stats();
  EXPECT_GT(held.live, 0u);
  EXPECT_GT(held.bytes, 0u);
  EXPECT_GT(held.saved, 0u);
  // Still readable right up to the release.
  EXPECT_TRUE(CheckPinAgainstState(index.get(), parked, w, w.states[0]));

  parked.Release();
  index->epochs()->RunGcCycle();
  const PageVersionStats after = index->version_stats();
  EXPECT_EQ(after.live, 0u) << "no pin left, every chain reclaimable";
  EXPECT_EQ(after.bytes, 0u);
  EXPECT_GT(after.reclaimed, 0u);
  EXPECT_EQ(after.saved, held.saved);  // reclamation saves nothing new

  // Fresh pins at the current epoch read the live frames directly.
  const EpochPin now = index->PinEpoch();
  EXPECT_TRUE(CheckPinAgainstState(index.get(), now, w, w.states.back()));
}

// The floor is min over ALL pins: releasing a newer pin while an older
// one is parked must keep every chain the older pin can still resolve.
TEST(SnapshotGc, FloorIsMinimumAcrossPins) {
  const uint64_t seed = SeedFromEnv(kSeedEnv, kDefaultSeed + 5);
  const Workload w = MakeWorkload(seed, SnapshotShape());

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  auto index = BuildIndex(&pool, w);
  ASSERT_TRUE(index->EnableSnapshots().ok());
  const uint64_t base = index->write_epoch();

  EpochPin old_pin = index->PinEpoch();
  const size_t half = w.batches.size() / 2;
  for (size_t b = 0; b < half; ++b) {
    ASSERT_TRUE(index->ApplyBatch(w.batches[b]).ok());
  }
  EpochPin mid_pin = index->PinEpoch();
  ASSERT_EQ(mid_pin.epoch() - base, half);
  for (size_t b = half; b < w.batches.size(); ++b) {
    ASSERT_TRUE(index->ApplyBatch(w.batches[b]).ok());
  }

  const EpochStats es = index->epoch_stats();
  EXPECT_EQ(es.pinned, 2u);
  EXPECT_EQ(es.min_pinned, base);
  EXPECT_GE(es.pins_taken, 2u);

  // Dropping the NEWER pin must not free what the older pin needs.
  mid_pin.Release();
  index->epochs()->RunGcCycle();
  EXPECT_TRUE(CheckPinAgainstState(index.get(), old_pin, w, w.states[0]));

  old_pin.Release();
  index->epochs()->RunGcCycle();
  EXPECT_EQ(index->version_stats().live, 0u);
}

// The background GC thread (started by EnableSnapshots) reclaims on its
// own once the pins go away — no manual cycle required.
TEST(SnapshotGc, BackgroundThreadReclaimsAfterRelease) {
  const uint64_t seed = SeedFromEnv(kSeedEnv, kDefaultSeed + 6);
  const Workload w = MakeWorkload(seed, SnapshotShape());

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  auto index = BuildIndex(&pool, w);
  ASSERT_TRUE(index->EnableSnapshots().ok());

  {
    const EpochPin pin = index->PinEpoch();
    for (const WriteBatch& batch : w.batches) {
      ASSERT_TRUE(index->ApplyBatch(batch).ok());
    }
    EXPECT_GT(index->version_stats().live, 0u);
  }  // pin released here

  // The GC loop wakes at least every 10ms; give it a generous bound.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (index->version_stats().live != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(index->version_stats().live, 0u);
  EXPECT_GT(index->epoch_stats().gc_cycles, 0u);
}

// ------------------------------------------------------ misuse aborts

TEST(SnapshotDeathTest, DoubleReleaseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto index = SpatialIndex::Create(&pool, opt).value();
  ASSERT_TRUE(index->Insert(Rect{0.1, 0.1, 0.2, 0.2}).ok());
  ASSERT_TRUE(index->EnableSnapshots().ok());

  EXPECT_DEATH(
      {
        EpochPin pin = index->PinEpoch();
        pin.Release();
        pin.Release();  // second release must abort
      },
      "released twice");
}

TEST(SnapshotDeathTest, CrossThreadReleaseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto index = SpatialIndex::Create(&pool, opt).value();
  ASSERT_TRUE(index->Insert(Rect{0.1, 0.1, 0.2, 0.2}).ok());
  ASSERT_TRUE(index->EnableSnapshots().ok());

  EXPECT_DEATH(
      {
        EpochPin pin = index->PinEpoch();
        // Reading the pin from another thread is allowed (the executor
        // shares one pin across workers); releasing is not.
        std::thread other([&] {
          (void)pin.epoch();
          pin.Release();  // wrong thread: must abort
        });
        other.join();
      },
      "other than the pinning");
}

TEST(SnapshotDeathTest, PinOutlivingItsIndexAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        auto pager = Pager::OpenInMemory(512);
        BufferPool pool(pager.get(), 64);
        SpatialIndexOptions opt;
        opt.data = DecomposeOptions::SizeBound(4);
        auto index = SpatialIndex::Create(&pool, opt).value();
        (void)index->Insert(Rect{0.1, 0.1, 0.2, 0.2});
        (void)index->EnableSnapshots();
        EpochPin pin = index->PinEpoch();
        index.reset();  // destroys the EpochManager under a live pin
      },
      "outlives");
}

// ------------------------------------------------- executor plan hooks

// Regression for the ReaderSection -> EpochPin migration boundary: the
// executor's plan hooks (PlanWindow / ExecuteWindowPlanSlice /
// RefineWindowCandidates) are NO_THREAD_SAFETY_ANALYSIS and run on many
// worker threads under ONE shared pin. If any hook observed a torn
// epoch — plan at boundary k, a slice or refinement at k+1 — the merged
// answer would match no single oracle state and fail the bracket check.
TEST(SnapshotStress, PlanHooksCannotObserveTornEpoch) {
  const uint64_t seed = SeedFromEnv(kSeedEnv, kDefaultSeed + 7);
  SCOPED_TRACE(SeedReplayHint(kSeedEnv, seed));
  const Workload w = MakeWorkload(seed, SnapshotShape());

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 128);
  auto index = BuildIndex(&pool, w);
  ASSERT_TRUE(index->EnableSnapshots().ok());
  const uint64_t base = index->write_epoch();

  QueryExecutor exec(index.get(), 4);
  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (const WriteBatch& batch : w.batches) {
      if (!index->ApplyBatch(batch).ok()) {
        ++failures;
        break;
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  // Drive the intra-query parallel path (big windows split into many
  // slices + refinement chunks) concurrently with the writer.
  bool last_pass = false;
  size_t iter = 0;
  while (!last_pass) {
    last_pass = writer_done.load(std::memory_order_acquire);
    const Rect& win = w.windows[w.windows.size() - 1 - (iter % 4)];
    const uint64_t e0 = index->write_epoch() - base;
    auto r = exec.ParallelWindowQuery(win);
    const uint64_t e1 = index->write_epoch() - base;
    if (!r.ok() ||
        !MatchesWindowInRange(w.states, win, r.value(), e0, e1)) {
      ++failures;
    }
    ++iter;
  }

  writer.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(iter, 0u);

  // Quiesced: the parallel answer now equals the plain snapshot answer
  // at the final boundary exactly.
  for (const Rect& win : w.windows) {
    EXPECT_EQ(exec.ParallelWindowQuery(win).value(),
              ExpectedWindow(w.states.back(), win));
  }
}

// ------------------------------------------------------------ DB facade

TEST(Snapshot, DbEnablesSnapshotsByDefaultAndReportsStats) {
  auto db = DB::Open("", {}).value();
  ASSERT_TRUE(db->index()->snapshots_enabled());

  ASSERT_TRUE(db->Insert(Rect{0.1, 0.1, 0.2, 0.2}).ok());
  ASSERT_TRUE(db->Insert(Rect{0.4, 0.4, 0.6, 0.6}).ok());
  auto hits = db->Window(Rect{0.0, 0.0, 1.0, 1.0}).value();
  EXPECT_EQ(hits.size(), 2u);

  const DBStats s = db->Stats();
  EXPECT_TRUE(s.snapshot_reads);
  EXPECT_GT(s.pins_taken, 0u) << "the Window query must have auto-pinned";
  EXPECT_EQ(s.pinned_epochs, 0u) << "auto-pins are released per query";
  EXPECT_GT(s.versions_saved, 0u)
      << "the second insert mutates pages the first one wrote";
}

TEST(Snapshot, DbSnapshotOptOutFallsBackToLatchedReads) {
  DBOptions opt;
  opt.snapshot_reads = false;
  auto db = DB::Open("", opt).value();
  ASSERT_FALSE(db->index()->snapshots_enabled());

  ASSERT_TRUE(db->Insert(Rect{0.1, 0.1, 0.2, 0.2}).ok());
  EXPECT_EQ(db->Window(Rect{0.0, 0.0, 1.0, 1.0}).value().size(), 1u);
  const DBStats s = db->Stats();
  EXPECT_FALSE(s.snapshot_reads);
  EXPECT_EQ(s.pins_taken, 0u);
  EXPECT_EQ(s.versions_saved, 0u);
}

// Snapshots compose with the group-commit pipeline: a journaled DB runs
// both; pinned reads stay stable across durable batch boundaries.
TEST(Snapshot, PinnedReadsStableAcrossGroupCommitBoundaries) {
  DBOptions opt;
  opt.memory_journal = true;
  auto db = DB::Open("", opt).value();
  ASSERT_TRUE(db->index()->snapshots_enabled());
  ASSERT_TRUE(db->index()->group_commit_active());

  WriteBatch first;
  for (int i = 0; i < 16; ++i) {
    first.Insert(Rect{0.05 * i, 0.05 * i, 0.05 * i + 0.02,
                      0.05 * i + 0.02});
  }
  ASSERT_TRUE(db->Apply(first).ok());

  const EpochPin pin = db->index()->PinEpoch();
  const auto before =
      db->index()->WindowQueryAt(pin, Rect{0, 0, 1, 1}).value();
  EXPECT_EQ(before.size(), 16u);

  WriteBatch second;
  second.Erase(before[0]);
  second.Insert(Rect{0.9, 0.9, 0.95, 0.95});
  ASSERT_TRUE(db->Apply(second, Durability::kDurable).ok());

  // Pinned view: unchanged. Live view: one erase, one insert.
  EXPECT_EQ(db->index()->WindowQueryAt(pin, Rect{0, 0, 1, 1}).value(),
            before);
  EXPECT_EQ(db->Window(Rect{0, 0, 1, 1}).value().size(), 16u);
}

}  // namespace
}  // namespace zdb
