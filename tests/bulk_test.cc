// Copyright (c) zdb authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/spatial_index.h"
#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

TEST(BulkLoad, EquivalentToIncremental) {
  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  const auto data = GenerateData(1000, dg);

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(8);

  auto bulk = SpatialIndex::Create(&pool, opt).value();
  ASSERT_TRUE(bulk->BulkLoad(data).ok());
  ASSERT_TRUE(bulk->btree()->CheckInvariants().ok());

  auto incr = SpatialIndex::Create(&pool, opt).value();
  for (const Rect& r : data) ASSERT_TRUE(incr->Insert(r).ok());

  EXPECT_EQ(bulk->btree()->size(), incr->btree()->size());
  EXPECT_EQ(bulk->build_stats().index_entries,
            incr->build_stats().index_entries);

  for (const Rect& w : GenerateWindows(20, 0.01, QueryGenOptions{})) {
    auto a = bulk->WindowQuery(w).value();
    auto b = incr->WindowQuery(w).value();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
  for (const Point& p : GeneratePoints(30, 3)) {
    auto a = bulk->PointQuery(p).value();
    auto b = incr->PointQuery(p).value();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
}

TEST(BulkLoad, SupportsUpdatesAfterwards) {
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  const auto data = GenerateData(500, dg);

  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 64);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto index = SpatialIndex::Create(&pool, opt).value();
  ASSERT_TRUE(index->BulkLoad(data).ok());

  // Erase half, insert replacements, verify against brute force.
  for (ObjectId oid = 0; oid < 250; ++oid) {
    ASSERT_TRUE(index->Erase(oid).ok());
  }
  const Rect fresh{0.42, 0.42, 0.43, 0.43};
  const ObjectId fresh_oid = index->Insert(fresh).value();
  EXPECT_EQ(fresh_oid, 500u);
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());

  auto got = index->WindowQuery(Rect{0, 0, 1, 1}).value();
  std::sort(got.begin(), got.end());
  std::vector<ObjectId> expect;
  for (ObjectId oid = 250; oid < 500; ++oid) expect.push_back(oid);
  expect.push_back(500);
  EXPECT_EQ(got, expect);
}

TEST(BulkLoad, RejectsNonEmptyIndex) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 16);
  auto index = SpatialIndex::Create(&pool, SpatialIndexOptions{}).value();
  ASSERT_TRUE(index->Insert(Rect{0.1, 0.1, 0.2, 0.2}).ok());
  EXPECT_TRUE(index->BulkLoad({Rect{0.3, 0.3, 0.4, 0.4}})
                  .IsInvalidArgument());
}

TEST(BulkLoad, EmptyInput) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 16);
  auto index = SpatialIndex::Create(&pool, SpatialIndexOptions{}).value();
  ASSERT_TRUE(index->BulkLoad({}).ok());
  EXPECT_TRUE(index->WindowQuery(Rect{0, 0, 1, 1}).value().empty());
  // Still usable.
  ASSERT_TRUE(index->Insert(Rect{0.5, 0.5, 0.6, 0.6}).ok());
  EXPECT_EQ(index->WindowQuery(Rect{0, 0, 1, 1}).value().size(), 1u);
}

}  // namespace
}  // namespace zdb
