// Copyright (c) zdb authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include "geom/grid.h"
#include "geom/polygon.h"
#include "geom/rect.h"

namespace zdb {
namespace {

TEST(Rect, BasicPredicates) {
  const Rect a{0.1, 0.1, 0.5, 0.4};
  EXPECT_TRUE(a.valid());
  EXPECT_DOUBLE_EQ(a.area(), 0.4 * 0.3);
  EXPECT_DOUBLE_EQ(a.margin(), 0.7);
  EXPECT_TRUE(a.Contains(Point{0.3, 0.2}));
  EXPECT_TRUE(a.Contains(Point{0.1, 0.1}));  // boundary inclusive
  EXPECT_FALSE(a.Contains(Point{0.6, 0.2}));
  EXPECT_TRUE(a.Contains(Rect{0.2, 0.2, 0.3, 0.3}));
  EXPECT_FALSE(a.Contains(Rect{0.2, 0.2, 0.6, 0.3}));
}

TEST(Rect, IntersectionSemantics) {
  const Rect a{0.0, 0.0, 0.5, 0.5};
  EXPECT_TRUE(a.Intersects(Rect{0.4, 0.4, 0.9, 0.9}));
  EXPECT_TRUE(a.Intersects(Rect{0.5, 0.5, 0.9, 0.9}));  // touching counts
  EXPECT_FALSE(a.Intersects(Rect{0.51, 0.0, 0.9, 0.9}));
  EXPECT_DOUBLE_EQ(a.IntersectionArea(Rect{0.4, 0.4, 0.9, 0.9}), 0.01);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(Rect{0.5, 0.5, 0.9, 0.9}), 0.0);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(Rect{0.6, 0.6, 0.9, 0.9}), 0.0);

  const Rect u = a.Union(Rect{0.4, 0.4, 0.9, 0.9});
  EXPECT_EQ(u, (Rect{0.0, 0.0, 0.9, 0.9}));
  const Rect i = a.Intersection(Rect{0.4, 0.4, 0.9, 0.9});
  EXPECT_EQ(i, (Rect{0.4, 0.4, 0.5, 0.5}));
  EXPECT_FALSE(a.Intersection(Rect{0.6, 0.6, 0.9, 0.9}).valid());
}

TEST(Rect, DegenerateRects) {
  const Rect point_like{0.3, 0.3, 0.3, 0.3};
  EXPECT_TRUE(point_like.valid());
  EXPECT_DOUBLE_EQ(point_like.area(), 0.0);
  EXPECT_TRUE(point_like.Contains(Point{0.3, 0.3}));
  EXPECT_TRUE(point_like.Intersects(Rect{0.2, 0.2, 0.4, 0.4}));

  const Rect inverted{0.5, 0.5, 0.4, 0.4};
  EXPECT_FALSE(inverted.valid());
}

TEST(Segments, Intersection) {
  const Point a{0, 0}, b{1, 1}, c{0, 1}, d{1, 0};
  EXPECT_TRUE(SegmentsIntersect(a, b, c, d));
  EXPECT_FALSE(SegmentsIntersect(a, Point{0.4, 0.4}, c, Point{0.1, 0.9}));
  // Collinear overlap and endpoint touch.
  EXPECT_TRUE(SegmentsIntersect(a, b, Point{0.5, 0.5}, Point{2, 2}));
  EXPECT_TRUE(SegmentsIntersect(a, b, b, Point{2, 0}));
  // Parallel, non-touching.
  EXPECT_FALSE(SegmentsIntersect(a, Point{1, 0}, Point{0, 0.1},
                                 Point{1, 0.1}));
}

Polygon Triangle() {
  return Polygon({{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.8}});
}

TEST(Polygon, ContainsPoint) {
  const Polygon t = Triangle();
  EXPECT_TRUE(t.Contains(Point{0.5, 0.4}));
  EXPECT_FALSE(t.Contains(Point{0.1, 0.1}));
  EXPECT_FALSE(t.Contains(Point{0.5, 0.9}));
  // Boundary points count as inside.
  EXPECT_TRUE(t.Contains(Point{0.5, 0.2}));
  EXPECT_TRUE(t.Contains(Point{0.2, 0.2}));
}

TEST(Polygon, AreaAndBounds) {
  const Polygon t = Triangle();
  EXPECT_NEAR(t.Area(), 0.5 * 0.6 * 0.6, 1e-12);
  const Rect b = t.Bounds();
  EXPECT_EQ(b, (Rect{0.2, 0.2, 0.8, 0.8}));

  // Orientation independence.
  const Polygon rev({{0.5, 0.8}, {0.8, 0.2}, {0.2, 0.2}});
  EXPECT_NEAR(rev.Area(), t.Area(), 1e-12);
}

TEST(Polygon, IntersectsRect) {
  const Polygon t = Triangle();
  // Rect fully inside the polygon.
  EXPECT_TRUE(t.Intersects(Rect{0.45, 0.3, 0.55, 0.4}));
  // Polygon fully inside the rect.
  EXPECT_TRUE(t.Intersects(Rect{0.0, 0.0, 1.0, 1.0}));
  // Edge crossing without contained vertices.
  EXPECT_TRUE(t.Intersects(Rect{0.0, 0.25, 1.0, 0.3}));
  // Disjoint but bounding boxes overlap (rect in the triangle's corner
  // notch).
  EXPECT_FALSE(t.Intersects(Rect{0.7, 0.6, 0.8, 0.8}));
  // Fully disjoint.
  EXPECT_FALSE(t.Intersects(Rect{0.85, 0.85, 0.95, 0.95}));
  // Touching a vertex.
  EXPECT_TRUE(t.Intersects(Rect{0.0, 0.0, 0.2, 0.2}));
}

TEST(Polygon, ConcavePolygon) {
  // A "U" shape; the notch is outside.
  const Polygon u({{0.1, 0.1}, {0.9, 0.1}, {0.9, 0.9}, {0.7, 0.9},
                   {0.7, 0.3}, {0.3, 0.3}, {0.3, 0.9}, {0.1, 0.9}});
  EXPECT_TRUE(u.Contains(Point{0.2, 0.5}));   // left arm
  EXPECT_TRUE(u.Contains(Point{0.8, 0.5}));   // right arm
  EXPECT_FALSE(u.Contains(Point{0.5, 0.6}));  // notch
  EXPECT_TRUE(u.Contains(Point{0.5, 0.2}));   // base
  EXPECT_FALSE(u.Intersects(Rect{0.4, 0.5, 0.6, 0.8}));  // inside notch
  EXPECT_TRUE(u.Intersects(Rect{0.4, 0.2, 0.6, 0.8}));   // spans base
}

TEST(Polygon, DegenerateCases) {
  EXPECT_FALSE(Polygon().Intersects(Rect{0, 0, 1, 1}));
  EXPECT_FALSE(Polygon().Contains(Point{0, 0}));
  EXPECT_DOUBLE_EQ(Polygon({{0.5, 0.5}}).Area(), 0.0);
}

// ------------------------------------------------------------------- grid

TEST(SpaceMapper, RoundTripsCells) {
  const SpaceMapper m(Rect{0, 0, 1, 1}, 8);  // 256x256 grid
  EXPECT_EQ(m.max_coord(), 255u);
  EXPECT_EQ(m.ToGridX(0.0), 0u);
  EXPECT_EQ(m.ToGridX(0.5), 128u);
  EXPECT_EQ(m.ToGridX(0.999999), 255u);
  // Out-of-bounds coordinates clamp.
  EXPECT_EQ(m.ToGridX(-0.5), 0u);
  EXPECT_EQ(m.ToGridX(1.5), 255u);

  const GridRect g = m.ToGrid(Rect{0.25, 0.5, 0.5, 0.75});
  const Rect back = m.ToWorld(g);
  // The grid rect covers the original rect.
  EXPECT_LE(back.xlo, 0.25);
  EXPECT_GE(back.xhi, 0.5);
  EXPECT_LE(back.ylo, 0.5);
  EXPECT_GE(back.yhi, 0.75);
  // ...within one cell of slack per side.
  EXPECT_NEAR(back.xlo, 0.25, 1.0 / 256);
  EXPECT_NEAR(back.xhi, 0.5, 1.0 / 256);
}

TEST(SpaceMapper, NonUnitWorld) {
  const SpaceMapper m(Rect{-100, 50, 300, 250}, 10);
  EXPECT_EQ(m.ToGridX(-100), 0u);
  EXPECT_EQ(m.ToGridY(50), 0u);
  EXPECT_EQ(m.ToGridX(299.9), 1023u);
  const GridRect g = m.ToGrid(Rect{0, 100, 100, 150});
  const Rect back = m.ToWorld(g);
  EXPECT_LE(back.xlo, 0.0);
  EXPECT_GE(back.xhi, 100.0);
}

TEST(GridRect, CellArithmetic) {
  const GridRect a{2, 3, 5, 7};
  EXPECT_EQ(a.width(), 4u);
  EXPECT_EQ(a.height(), 5u);
  EXPECT_EQ(a.CellCount(), 20u);
  const GridRect b{5, 7, 9, 9};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.IntersectionCells(b), 1u);  // single shared cell
  EXPECT_FALSE(a.Intersects(GridRect{6, 3, 9, 7}));
  EXPECT_TRUE(a.Contains(GridRect{2, 3, 2, 3}));
  EXPECT_FALSE(a.Contains(GridRect{2, 3, 6, 7}));
  // Single-cell rect.
  const GridRect c{4, 4, 4, 4};
  EXPECT_EQ(c.CellCount(), 1u);
  EXPECT_EQ(a.IntersectionCells(c), 1u);
}

}  // namespace
}  // namespace zdb
