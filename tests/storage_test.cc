// Copyright (c) zdb authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "storage/buffer_pool.h"
#include "storage/file.h"
#include "storage/pager.h"

namespace zdb {
namespace {

// ------------------------------------------------------------------ files

TEST(MemFile, ZeroFillsPastEof) {
  MemFile f;
  ASSERT_TRUE(f.Write(0, "abc", 3).ok());
  char buf[8];
  std::memset(buf, 'x', sizeof(buf));
  ASSERT_TRUE(f.Read(1, 6, buf).ok());
  EXPECT_EQ(buf[0], 'b');
  EXPECT_EQ(buf[1], 'c');
  EXPECT_EQ(buf[2], 0);
  EXPECT_EQ(buf[5], 0);
  EXPECT_EQ(f.Size(), 3u);
}

TEST(MemFile, SparseWriteExtends) {
  MemFile f;
  ASSERT_TRUE(f.Write(100, "z", 1).ok());
  EXPECT_EQ(f.Size(), 101u);
  char c = 'x';
  ASSERT_TRUE(f.Read(50, 1, &c).ok());
  EXPECT_EQ(c, 0);
}

TEST(PosixFile, RoundTrip) {
  char path[] = "/tmp/zdb_file_test_XXXXXX";
  int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);
  {
    auto f = PosixFile::Open(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Write(4096, "hello", 5).ok());
    ASSERT_TRUE((*f)->Sync().ok());
    EXPECT_EQ((*f)->Size(), 4101u);
  }
  {
    auto f = PosixFile::Open(path);
    ASSERT_TRUE(f.ok());
    char buf[5];
    ASSERT_TRUE((*f)->Read(4096, 5, buf).ok());
    EXPECT_EQ(std::string(buf, 5), "hello");
    // Reads past EOF zero-fill.
    char past[3];
    ASSERT_TRUE((*f)->Read(10000, 3, past).ok());
    EXPECT_EQ(past[0], 0);
  }
  std::remove(path);
}

// ------------------------------------------------------------------ pager

TEST(Pager, RejectsBadPageSize) {
  EXPECT_FALSE(Pager::Open(std::make_unique<MemFile>(), 100).ok());
  EXPECT_FALSE(Pager::Open(std::make_unique<MemFile>(), 1000).ok());
  EXPECT_FALSE(Pager::Open(std::make_unique<MemFile>(), 1 << 20).ok());
  EXPECT_TRUE(Pager::Open(std::make_unique<MemFile>(), 256).ok());
}

TEST(Pager, AllocateReadWrite) {
  auto pager = Pager::OpenInMemory(512);
  auto p1 = pager->Allocate();
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, 1u);  // page 0 is the header
  std::vector<char> buf(512, 'a');
  ASSERT_TRUE(pager->WritePage(*p1, buf.data()).ok());
  std::vector<char> got(512);
  ASSERT_TRUE(pager->ReadPage(*p1, got.data()).ok());
  EXPECT_EQ(got, buf);
  EXPECT_EQ(pager->io_stats().page_reads, 1u);
  EXPECT_EQ(pager->io_stats().page_writes, 1u);
  EXPECT_EQ(pager->live_page_count(), 1u);
}

TEST(Pager, FreeListRecycles) {
  auto pager = Pager::OpenInMemory(512);
  const PageId a = pager->Allocate().value();
  const PageId b = pager->Allocate().value();
  EXPECT_EQ(pager->live_page_count(), 2u);
  ASSERT_TRUE(pager->Free(a).ok());
  ASSERT_TRUE(pager->Free(b).ok());
  EXPECT_EQ(pager->live_page_count(), 0u);
  // LIFO recycling.
  EXPECT_EQ(pager->Allocate().value(), b);
  EXPECT_EQ(pager->Allocate().value(), a);
  // No new pages were created.
  EXPECT_EQ(pager->page_count(), 3u);
}

TEST(Pager, RejectsInvalidIds) {
  auto pager = Pager::OpenInMemory(512);
  std::vector<char> buf(512);
  EXPECT_FALSE(pager->ReadPage(kInvalidPageId, buf.data()).ok());
  EXPECT_FALSE(pager->ReadPage(99, buf.data()).ok());
  EXPECT_FALSE(pager->WritePage(99, buf.data()).ok());
  EXPECT_FALSE(pager->Free(99).ok());
}

TEST(Pager, PersistsAcrossReopen) {
  auto file = std::make_unique<MemFile>();
  MemFile* raw = file.get();
  PageId page;
  {
    auto pager = Pager::Open(std::move(file), 512).value();
    page = pager->Allocate().value();
    std::vector<char> buf(512, 'q');
    ASSERT_TRUE(pager->WritePage(page, buf.data()).ok());
    ASSERT_TRUE(pager->Sync().ok());
    // Hand the file back for "reopen" (MemFile has no real identity; we
    // copy its contents into a fresh one).
    file = std::make_unique<MemFile>();
    std::vector<char> all(raw->Size());
    ASSERT_TRUE(raw->Read(0, all.size(), all.data()).ok());
    ASSERT_TRUE(file->Write(0, all.data(), all.size()).ok());
  }
  auto pager = Pager::Open(std::move(file), 512);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->live_page_count(), 1u);
  std::vector<char> got(512);
  ASSERT_TRUE((*pager)->ReadPage(page, got.data()).ok());
  EXPECT_EQ(got[0], 'q');
}

TEST(Pager, ReopenRejectsWrongPageSize) {
  auto file = std::make_unique<MemFile>();
  MemFile* raw = file.get();
  {
    auto pager = Pager::Open(std::move(file), 512).value();
    ASSERT_TRUE(pager->Sync().ok());
    file = std::make_unique<MemFile>();
    std::vector<char> all(raw->Size());
    ASSERT_TRUE(raw->Read(0, all.size(), all.data()).ok());
    ASSERT_TRUE(file->Write(0, all.data(), all.size()).ok());
  }
  EXPECT_FALSE(Pager::Open(std::move(file), 1024).ok());
}

// ------------------------------------------------------------ buffer pool

TEST(BufferPool, HitAndMissAccounting) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 4);
  PageId id;
  {
    auto ref = pool.New().value();
    id = ref.id();
    ref.mutable_data()[0] = 'z';
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.Clear().ok());

  const IoStats before = pager->io_stats();
  {
    auto ref = pool.Fetch(id).value();  // miss
    EXPECT_EQ(ref.data()[0], 'z');
  }
  {
    auto ref = pool.Fetch(id).value();  // hit
    (void)ref;
  }
  const IoStats d = pager->io_stats().Since(before);
  EXPECT_EQ(d.pool_misses, 1u);
  EXPECT_EQ(d.pool_hits, 1u);
  EXPECT_EQ(d.page_reads, 1u);
}

TEST(BufferPool, EvictsLeastRecentlyUsed) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 2);
  const PageId a = pool.New().value().id();
  const PageId b = pool.New().value().id();
  ASSERT_TRUE(pool.FlushAll().ok());

  // Touch a, then fetch a third page: b must be evicted.
  (void)pool.Fetch(a).value();
  const PageId c = pool.New().value().id();
  (void)c;
  const IoStats before = pager->io_stats();
  (void)pool.Fetch(a).value();  // still cached -> hit
  EXPECT_EQ(pager->io_stats().Since(before).pool_hits, 1u);
  const IoStats before_b = pager->io_stats();
  (void)pool.Fetch(b).value();  // evicted -> miss
  EXPECT_EQ(pager->io_stats().Since(before_b).pool_misses, 1u);
}

TEST(BufferPool, PinnedPagesAreNotEvicted) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 2);
  auto pin1 = pool.New().value();
  auto pin2 = pool.New().value();
  // Pool full of pins: a third page must fail.
  auto third = pool.New();
  EXPECT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsNoSpace());
  pin1.Release();
  EXPECT_TRUE(pool.New().ok());
}

TEST(BufferPool, DirtyPagesAreWrittenBackOnEviction) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 1);
  PageId id;
  {
    auto ref = pool.New().value();
    id = ref.id();
    ref.mutable_data()[7] = 'd';
  }
  // Evict by fetching another page.
  const PageId other = pager->Allocate().value();
  std::vector<char> zero(512, 0);
  ASSERT_TRUE(pager->WritePage(other, zero.data()).ok());
  (void)pool.Fetch(other).value();
  // The dirty page reached the file.
  std::vector<char> got(512);
  ASSERT_TRUE(pager->ReadPage(id, got.data()).ok());
  EXPECT_EQ(got[7], 'd');
  EXPECT_GE(pager->io_stats().pool_evictions, 1u);
}

TEST(BufferPool, DeleteDropsPage) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 4);
  PageId id;
  {
    auto ref = pool.New().value();
    id = ref.id();
  }
  ASSERT_TRUE(pool.Delete(id).ok());
  EXPECT_EQ(pager->live_page_count(), 0u);
  // Freed page is recycled by the next New().
  EXPECT_EQ(pool.New().value().id(), id);
}

TEST(BufferPool, DeletePinnedFails) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 4);
  auto ref = pool.New().value();
  EXPECT_FALSE(pool.Delete(ref.id()).ok());
}

TEST(BufferPool, MoveSemanticsOfPageRef) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 2);
  auto a = pool.New().value();
  const PageId id = a.id();
  PageRef b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.id(), id);
  b.Release();
  EXPECT_FALSE(b.valid());
}

}  // namespace
}  // namespace zdb
