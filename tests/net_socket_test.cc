// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Socket-layer torture tests: the nonblocking primitives the event-
// driven server is built on, driven through their worst cases — 1-byte
// reads and writes through the FrameAssembler, a full socket buffer
// forcing kWouldBlock mid-frame, EOF and reset delivery — plus
// regression tests for two bugs this layer shipped with: WaitReadable
// restarting its full timeout after every EINTR (unbounded wait under
// signal load), and over-long unix socket paths being silently
// truncated by strncpy into sockaddr_un (connecting to the wrong
// address instead of failing).

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/socket.h"
#include "net/wire.h"

namespace zdb {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

/// A connected loopback TCP pair (client side, accepted side).
struct SocketPair {
  Socket client;
  Socket server;

  SocketPair() {
    auto listener = TcpListen("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    auto port = LocalPort(listener.value());
    EXPECT_TRUE(port.ok());
    auto c = TcpConnect("127.0.0.1", port.value());
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    client = std::move(c).value();
    auto s = Accept(listener.value());
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    server = std::move(s).value();
  }
};

// ------------------------------------------------------------ WaitReadable

void SigusrNoop(int) {}

// Regression: WaitReadable used to restart poll(2) with the FULL
// timeout after every EINTR. Under a steady signal stream arriving
// faster than the timeout, the deadline was never reached and the call
// blocked unboundedly. The fix computes the remaining time from a
// monotonic deadline on each restart.
TEST(NetSocket, WaitReadableHonorsDeadlineUnderSignalStorm) {
  struct sigaction sa {};
  struct sigaction old {};
  sa.sa_handler = SigusrNoop;  // deliberately no SA_RESTART: poll gets EINTR
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  SocketPair pair;  // no data will arrive on either end

  const pthread_t target = pthread_self();
  std::atomic<bool> stop{false};
  // Signal the waiting thread every 25ms — far more often than the
  // 150ms timeout, so full-timeout restarts would never converge.
  std::thread storm([&] {
    while (!stop.load()) {
      pthread_kill(target, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  });

  const auto t0 = Clock::now();
  auto r = WaitReadable(pair.client, 150);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            t0);
  stop.store(true);
  storm.join();
  sigaction(SIGUSR1, &old, nullptr);

  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value());  // timed out, no data
  // Generous upper bound: with the bug this ran until the storm stopped
  // (and before the storm had a stop at all, forever).
  EXPECT_GE(elapsed.count(), 140);
  EXPECT_LT(elapsed.count(), 2000);
}

// --------------------------------------------------------- unix path bugs

// Regression: sockaddr_un.sun_path is ~108 bytes. The original code
// strncpy'd the path in, so an over-long path was silently truncated —
// listen/connect then targeted a DIFFERENT path than requested. Both
// directions must refuse with InvalidArgument instead.
TEST(NetSocket, UnixPathTooLongIsRejectedNotTruncated) {
  const std::string long_path = "/tmp/" + std::string(200, 'z') + ".sock";

  auto listener = UnixListen(long_path);
  ASSERT_FALSE(listener.ok());
  EXPECT_TRUE(listener.status().IsInvalidArgument())
      << listener.status().ToString();
  EXPECT_NE(listener.status().message().find("too long"), std::string::npos);

  auto conn = UnixConnect(long_path);
  ASSERT_FALSE(conn.ok());
  EXPECT_TRUE(conn.status().IsInvalidArgument())
      << conn.status().ToString();

  // The truncated prefix must not have been created as a side effect.
  const std::string truncated = long_path.substr(0, 107);
  EXPECT_NE(::access(truncated.c_str(), F_OK), 0);
}

// A path that exactly fits still works end to end.
TEST(NetSocket, UnixPathAtLimitStillWorks) {
  std::string path = "/tmp/zdb_sock_limit_";
  path += std::to_string(::getpid());
  ASSERT_LT(path.size(), size_t{107});

  auto listener = UnixListen(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  auto conn = UnixConnect(path);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto accepted = Accept(listener.value());
  ASSERT_TRUE(accepted.ok());

  const char ping = 'p';
  ASSERT_TRUE(WriteFully(conn.value(), &ping, 1).ok());
  char got = 0;
  auto n = ReadSome(accepted.value(), &got, 1);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1u);
  EXPECT_EQ(got, 'p');
  ::unlink(path.c_str());
}

// ------------------------------------------------- nonblocking primitives

// Push a full wire frame through the nonblocking primitives one byte at
// a time in both directions: WriteSome is offered exactly 1 byte per
// call, TryRead reads into a 1-byte buffer, and the FrameAssembler sees
// the worst possible fragmentation (every header field split).
TEST(NetSocket, OneByteTortureThroughFrameAssembler) {
  SocketPair pair;
  ASSERT_TRUE(SetNonBlocking(pair.client).ok());
  ASSERT_TRUE(SetNonBlocking(pair.server).ok());

  const std::string payload(513, 'q');  // odd size: not block-aligned
  const std::string frame =
      BuildFrame(Opcode::kWindow, 0, 0xDEADBEEFCAFEULL, payload);

  FrameAssembler assembler;
  size_t sent = 0;
  size_t fed = 0;
  Frame out;
  bool got_frame = false;
  while (!got_frame) {
    if (sent < frame.size()) {
      size_t n = 0;
      auto w = WriteSome(pair.client, frame.data() + sent, 1, &n);
      ASSERT_TRUE(w.ok()) << w.status().ToString();
      if (w.value() == IoEvent::kData) sent += n;
    }
    char byte;
    size_t n = 0;
    auto r = TryRead(pair.server, &byte, 1, &n);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_NE(r.value(), IoEvent::kEof);
    if (r.value() == IoEvent::kWouldBlock) continue;
    ASSERT_EQ(n, 1u);
    fed += n;
    assembler.Feed(&byte, 1);

    WireError err;
    FrameHeader eh;
    const auto next = assembler.Poll(&out, &err, &eh);
    if (next == FrameAssembler::Next::kFrame) {
      got_frame = true;
    } else {
      ASSERT_EQ(next, FrameAssembler::Next::kNeedMore)
          << "framing error " << WireErrorName(err) << " after " << fed
          << " bytes";
    }
  }
  EXPECT_EQ(fed, frame.size());
  EXPECT_EQ(out.header.opcode, static_cast<uint8_t>(Opcode::kWindow));
  EXPECT_EQ(out.header.request_id, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(out.payload, payload);
}

// Fill the socket's send buffer until WriteSome reports kWouldBlock,
// drain the peer, and finish — the partial-write resume path the
// server's EPOLLOUT flushing depends on.
TEST(NetSocket, WriteSomeWouldBlockThenResumes) {
  SocketPair pair;
  ASSERT_TRUE(SetNonBlocking(pair.client).ok());
  ASSERT_TRUE(SetNonBlocking(pair.server).ok());

  // Clamp the send buffer so a modest payload overruns it.
  const int small = 4096;
  ASSERT_EQ(::setsockopt(pair.client.fd(), SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);

  const std::string blob(1 << 20, 'B');
  size_t sent = 0;
  bool saw_would_block = false;
  std::vector<char> sink(64 * 1024);
  size_t received = 0;
  while (sent < blob.size() || received < blob.size()) {
    if (sent < blob.size()) {
      size_t n = 0;
      auto w =
          WriteSome(pair.client, blob.data() + sent, blob.size() - sent, &n);
      ASSERT_TRUE(w.ok()) << w.status().ToString();
      if (w.value() == IoEvent::kWouldBlock) {
        saw_would_block = true;
      } else {
        sent += n;
      }
    }
    size_t n = 0;
    auto r = TryRead(pair.server, sink.data(), sink.size(), &n);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_NE(r.value(), IoEvent::kEof);
    if (r.value() == IoEvent::kData) received += n;
  }
  EXPECT_TRUE(saw_would_block);
  EXPECT_EQ(received, blob.size());
}

TEST(NetSocket, TryReadReportsEofOnOrderlyClose) {
  SocketPair pair;
  ASSERT_TRUE(SetNonBlocking(pair.server).ok());
  pair.client.Close();
  char buf[16];
  size_t n = 0;
  auto r = TryRead(pair.server, buf, sizeof(buf), &n);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), IoEvent::kEof);
}

// ---------------------------------------------------- accept classification

// The full errno -> policy table. kShutdown is reserved for provably
// dead listeners; anything unknown retries, because abandoning a
// listener is the one mistake an accept loop can't recover from.
TEST(NetSocket, ClassifyAcceptErrorsTable) {
  EXPECT_EQ(ClassifyAcceptError(EINTR), AcceptOutcome::kRetry);
  EXPECT_EQ(ClassifyAcceptError(ECONNABORTED), AcceptOutcome::kRetry);
  EXPECT_EQ(ClassifyAcceptError(EPROTO), AcceptOutcome::kRetry);
  EXPECT_EQ(ClassifyAcceptError(EPERM), AcceptOutcome::kRetry);

  EXPECT_EQ(ClassifyAcceptError(EAGAIN), AcceptOutcome::kWouldBlock);
#if EAGAIN != EWOULDBLOCK
  EXPECT_EQ(ClassifyAcceptError(EWOULDBLOCK), AcceptOutcome::kWouldBlock);
#endif

  EXPECT_EQ(ClassifyAcceptError(EMFILE), AcceptOutcome::kFdExhausted);
  EXPECT_EQ(ClassifyAcceptError(ENFILE), AcceptOutcome::kFdExhausted);
  EXPECT_EQ(ClassifyAcceptError(ENOBUFS), AcceptOutcome::kFdExhausted);
  EXPECT_EQ(ClassifyAcceptError(ENOMEM), AcceptOutcome::kFdExhausted);

  EXPECT_EQ(ClassifyAcceptError(EBADF), AcceptOutcome::kShutdown);
  EXPECT_EQ(ClassifyAcceptError(EINVAL), AcceptOutcome::kShutdown);
  EXPECT_EQ(ClassifyAcceptError(ENOTSOCK), AcceptOutcome::kShutdown);
  EXPECT_EQ(ClassifyAcceptError(EOPNOTSUPP), AcceptOutcome::kShutdown);

  // Unknown errno: never kill the listener.
  EXPECT_EQ(ClassifyAcceptError(EIO), AcceptOutcome::kRetry);
}

TEST(NetSocket, AcceptNonBlockingReportsWouldBlockWhenIdle) {
  auto listener = TcpListen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(SetNonBlocking(listener.value()).ok());
  Socket out;
  EXPECT_EQ(AcceptNonBlocking(listener.value(), &out),
            AcceptOutcome::kWouldBlock);
  EXPECT_FALSE(out.valid());

  // With a pending connection the accepted socket comes back O_NONBLOCK.
  auto port = LocalPort(listener.value());
  ASSERT_TRUE(port.ok());
  auto c = TcpConnect("127.0.0.1", port.value());
  ASSERT_TRUE(c.ok());
  AcceptOutcome outcome = AcceptOutcome::kWouldBlock;
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (outcome == AcceptOutcome::kWouldBlock && Clock::now() < deadline) {
    outcome = AcceptNonBlocking(listener.value(), &out);
  }
  ASSERT_EQ(outcome, AcceptOutcome::kAccepted);
  ASSERT_TRUE(out.valid());
  char buf[1];
  size_t n = 0;
  auto r = TryRead(out, buf, 1, &n);  // must not block: no data yet
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), IoEvent::kWouldBlock);
}

}  // namespace
}  // namespace net
}  // namespace zdb
