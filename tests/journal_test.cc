// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Atomic batches and crash recovery: a batch of B+-tree mutations either
// commits entirely or, after a simulated crash at ANY point mid-batch,
// rolls back entirely on reopen — leaving the pre-batch tree intact.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <thread>

#include "btree/btree.h"
#include "btree/cursor.h"
#include "common/random.h"
#include "core/spatial_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace zdb {
namespace {

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

struct CrashRig {
  CrashRig() {
    auto db_file = std::make_unique<MemFile>();
    auto journal_file = std::make_unique<MemFile>();
    db = db_file.get();
    journal = journal_file.get();
    pager =
        Pager::Open(std::move(db_file), std::move(journal_file), 512)
            .value();
    pool = std::make_unique<BufferPool>(pager.get(), 32);
  }

  /// Simulates a crash: reopen fresh structures from byte copies of the
  /// current file contents (recovery runs inside Pager::Open).
  void CrashAndReopen() {
    auto db_copy = std::make_unique<MemFile>();
    db_copy->RestoreSnapshot(db->Snapshot());
    auto journal_copy = std::make_unique<MemFile>();
    journal_copy->RestoreSnapshot(journal->Snapshot());
    db = db_copy.get();
    journal = journal_copy.get();
    pool.reset();
    pager =
        Pager::Open(std::move(db_copy), std::move(journal_copy), 512)
            .value();
    pool = std::make_unique<BufferPool>(pager.get(), 32);
  }

  MemFile* db;
  MemFile* journal;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<BufferPool> pool;
};

TEST(Journal, CommitMakesBatchDurable) {
  CrashRig rig;
  PageId meta;
  {
    auto tree = BTree::Create(rig.pool.get()).value();
    meta = tree->meta_page();
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(tree->Insert(Key(i), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(tree->Flush().ok());
    ASSERT_TRUE(rig.pool->FlushAll().ok());
    ASSERT_TRUE(rig.pager->CommitBatch().ok());
  }
  rig.CrashAndReopen();
  auto tree = BTree::Open(rig.pool.get(), meta).value();
  EXPECT_EQ(tree->size(), 500u);
  EXPECT_EQ(tree->Get(Key(123)).value(), "v123");
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(Journal, CrashMidBatchRollsBackToPreBatchState) {
  CrashRig rig;
  PageId meta;
  // Committed baseline: 300 entries.
  {
    auto tree = BTree::Create(rig.pool.get()).value();
    meta = tree->meta_page();
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(tree->Insert(Key(i), "base").ok());
    }
    ASSERT_TRUE(tree->Flush().ok());
    ASSERT_TRUE(rig.pool->FlushAll().ok());
    ASSERT_TRUE(rig.pager->CommitBatch().ok());
  }

  // Doomed batch: heavy churn flushed to disk but never committed.
  {
    auto tree = BTree::Open(rig.pool.get(), meta).value();
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    Random rng(5);
    for (int op = 0; op < 1000; ++op) {
      const int i = static_cast<int>(rng.Uniform(600));
      if (rng.Bernoulli(0.4)) {
        (void)tree->Delete(Key(i));
      } else {
        (void)tree->Put(Key(i), "doomed" + std::to_string(op));
      }
    }
    ASSERT_TRUE(tree->Flush().ok());
    ASSERT_TRUE(rig.pool->FlushAll().ok());
    // No CommitBatch: power goes out here.
  }

  rig.CrashAndReopen();
  auto tree = BTree::Open(rig.pool.get(), meta).value();
  ASSERT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->size(), 300u);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(tree->Get(Key(i)).value(), "base") << i;
  }
  EXPECT_TRUE(tree->Get(Key(450)).status().IsNotFound());

  // The rolled-back pager accepts a fresh, successful batch.
  ASSERT_TRUE(rig.pager->BeginBatch().ok());
  ASSERT_TRUE(tree->Insert(Key(900), "after").ok());
  ASSERT_TRUE(tree->Flush().ok());
  ASSERT_TRUE(rig.pool->FlushAll().ok());
  ASSERT_TRUE(rig.pager->CommitBatch().ok());
  rig.CrashAndReopen();
  tree = BTree::Open(rig.pool.get(), meta).value();
  EXPECT_EQ(tree->size(), 301u);
}

TEST(Journal, CrashAtEveryPrefixRollsBackCleanly) {
  // Stronger property: crash after each flush point of a growing batch;
  // every reopen must see exactly the committed baseline.
  CrashRig rig;
  PageId meta;
  {
    auto tree = BTree::Create(rig.pool.get()).value();
    meta = tree->meta_page();
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(tree->Insert(Key(i), "base").ok());
    }
    ASSERT_TRUE(tree->Flush().ok());
    ASSERT_TRUE(rig.pool->FlushAll().ok());
    ASSERT_TRUE(rig.pager->CommitBatch().ok());
  }
  const std::vector<char> db_committed = rig.db->Snapshot();

  for (int crash_after : {0, 1, 5, 20, 60, 120}) {
    // Restore the committed image and run a partial batch.
    auto db_copy = std::make_unique<MemFile>();
    db_copy->RestoreSnapshot(db_committed);
    auto journal_copy = std::make_unique<MemFile>();
    MemFile* db_raw = db_copy.get();
    MemFile* journal_raw = journal_copy.get();
    auto pager =
        Pager::Open(std::move(db_copy), std::move(journal_copy), 512)
            .value();
    BufferPool pool(pager.get(), 8);  // tiny: evictions hit disk early
    auto tree = BTree::Open(&pool, meta).value();
    ASSERT_TRUE(pager->BeginBatch().ok());
    for (int i = 0; i < crash_after; ++i) {
      ASSERT_TRUE(tree->Put(Key(i % 150), "doomed").ok());
    }
    (void)tree->Flush();
    (void)pool.FlushAll();
    // Crash: reopen from copies.
    auto db2 = std::make_unique<MemFile>();
    db2->RestoreSnapshot(db_raw->Snapshot());
    auto journal2 = std::make_unique<MemFile>();
    journal2->RestoreSnapshot(journal_raw->Snapshot());
    auto pager2 =
        Pager::Open(std::move(db2), std::move(journal2), 512).value();
    BufferPool pool2(pager2.get(), 32);
    auto tree2 = BTree::Open(&pool2, meta).value();
    ASSERT_TRUE(tree2->CheckInvariants().ok()) << crash_after;
    ASSERT_EQ(tree2->size(), 100u) << crash_after;
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(tree2->Get(Key(i)).value(), "base");
    }
  }
}

TEST(Journal, SpatialIndexBatchSurvivesCrash) {
  // End-to-end: a checkpointed spatial index plus an aborted update
  // batch; after the crash the index answers exactly as before.
  CrashRig rig;
  PageId master;
  {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(4);
    auto index = SpatialIndex::Create(rig.pool.get(), opt).value();
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    for (int i = 0; i < 200; ++i) {
      const double x = 0.004 * i + 0.01;
      ASSERT_TRUE(index->Insert(Rect{x, x, x + 0.003, x + 0.003}).ok());
    }
    master = index->Checkpoint().value();
    ASSERT_TRUE(rig.pool->FlushAll().ok());
    ASSERT_TRUE(rig.pager->CommitBatch().ok());
  }

  // Doomed batch: erase half, insert others, flush, crash.
  {
    auto index = SpatialIndex::Open(rig.pool.get(), master).value();
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    for (ObjectId oid = 0; oid < 100; ++oid) {
      ASSERT_TRUE(index->Erase(oid).ok());
    }
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(index->Insert(Rect{0.9, 0.9, 0.95, 0.95}).ok());
    }
    (void)index->Checkpoint();
    ASSERT_TRUE(rig.pool->FlushAll().ok());
  }
  rig.CrashAndReopen();

  auto index = SpatialIndex::Open(rig.pool.get(), master).value();
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());
  EXPECT_EQ(index->object_count(), 200u);
  auto hits = index->WindowQuery(Rect{0, 0, 1, 1}).value();
  EXPECT_EQ(hits.size(), 200u);
  EXPECT_TRUE(index->WindowQuery(Rect{0.89, 0.89, 0.96, 0.96})
                  .value()
                  .empty());
}

TEST(Journal, CrashMidBatchWithParallelReadersRollsBack) {
  // Crash recovery under concurrent load: a doomed update batch churns
  // the index while parallel reader threads run queries against it (a
  // tiny pool forces reader- and writer-driven evictions, so dirty
  // pages — and their journal before-images — hit the disk mid-batch).
  // After the crash, reopen must roll back to the pre-batch tree.
  CrashRig rig;
  PageId master;
  const Rect world{0, 0, 1, 1};
  {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(4);
    auto index = SpatialIndex::Create(rig.pool.get(), opt).value();
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    for (int i = 0; i < 150; ++i) {
      const double x = 0.006 * i + 0.01;
      ASSERT_TRUE(index->Insert(Rect{x, x, x + 0.004, x + 0.004}).ok());
    }
    master = index->Checkpoint().value();
    ASSERT_TRUE(rig.pool->FlushAll().ok());
    ASSERT_TRUE(rig.pager->CommitBatch().ok());
  }

  {
    // Doomed batch with readers in flight. The index latch serializes
    // each mutation against the queries; the pager batch makes the whole
    // churn roll back on reopen.
    auto index = SpatialIndex::Open(rig.pool.get(), master).value();
    ASSERT_TRUE(rig.pager->BeginBatch().ok());

    std::atomic<bool> stop{false};
    std::atomic<int> reader_failures{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
      readers.emplace_back([&, t] {
        uint64_t hits = 0;
        while (!stop.load(std::memory_order_acquire)) {
          const double lo = 0.1 + 0.2 * t;
          auto r = index->WindowQuery(Rect{lo, lo, lo + 0.3, lo + 0.3});
          if (!r.ok()) {
            ++reader_failures;
            break;
          }
          hits += r.value().size();
          auto n = index->NearestNeighbors(Point{lo, lo}, 3);
          if (!n.ok()) {
            ++reader_failures;
            break;
          }
        }
        (void)hits;
      });
    }

    for (ObjectId oid = 0; oid < 75; ++oid) {
      ASSERT_TRUE(index->Erase(oid).ok());
    }
    for (int i = 0; i < 120; ++i) {
      const double x = 0.002 * i + 0.3;
      ASSERT_TRUE(index->Insert(Rect{x, x, x + 0.1, x + 0.1}).ok());
    }
    (void)index->Checkpoint();
    (void)rig.pool->FlushAll();  // may legally skip reader-pinned pages

    stop.store(true, std::memory_order_release);
    for (auto& r : readers) r.join();
    EXPECT_EQ(reader_failures.load(), 0);
    // Power goes out before CommitBatch.
  }
  rig.CrashAndReopen();

  auto index = SpatialIndex::Open(rig.pool.get(), master).value();
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());
  EXPECT_EQ(index->object_count(), 150u);
  auto hits = index->WindowQuery(world).value();
  EXPECT_EQ(hits.size(), 150u);
  for (ObjectId oid = 0; oid < 150; ++oid) {
    EXPECT_TRUE(std::find(hits.begin(), hits.end(), oid) != hits.end())
        << oid;
  }
}

TEST(Journal, ApplyBatchIsCrashAtomic) {
  // The promoted batch API: ApplyBatch commits its own journal batch, so
  // a committed batch survives a crash and an uncommitted manual batch
  // around further churn rolls back to the last ApplyBatch state.
  CrashRig rig;
  PageId master;
  {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(4);
    auto index = SpatialIndex::Create(rig.pool.get(), opt).value();
    // An initial checkpointed, committed batch so Open() works later.
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    for (int i = 0; i < 50; ++i) {
      const double x = 0.01 * i + 0.01;
      ASSERT_TRUE(index->Insert(Rect{x, x, x + 0.005, x + 0.005}).ok());
    }
    master = index->Checkpoint().value();
    ASSERT_TRUE(rig.pool->FlushAll().ok());
    ASSERT_TRUE(rig.pager->CommitBatch().ok());

    // ApplyBatch journals, checkpoints, flushes and commits on its own.
    WriteBatch batch;
    for (ObjectId oid = 0; oid < 10; ++oid) batch.Erase(oid);
    batch.Insert(Rect{0.8, 0.8, 0.85, 0.85});
    auto inserted = index->ApplyBatch(batch).value();
    ASSERT_EQ(inserted.size(), 1u);
    EXPECT_EQ(inserted[0], 50u);
  }
  rig.CrashAndReopen();
  {
    auto index = SpatialIndex::Open(rig.pool.get(), master).value();
    EXPECT_EQ(index->object_count(), 41u);  // 50 - 10 + 1
    EXPECT_EQ(index->WindowQuery(Rect{0.79, 0.79, 0.86, 0.86})
                  .value()
                  .size(),
              1u);

    // A doomed batch AFTER a committed ApplyBatch: ApplyBatch composes
    // with a caller-managed pager batch (it must not commit it), so the
    // crash rolls back to the state of the last committed batch.
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    WriteBatch doomed;
    doomed.Erase(50);
    // Off the baseline diagonal, so the emptiness check below cannot be
    // satisfied by surviving baseline objects.
    for (int i = 0; i < 30; ++i) {
      doomed.Insert(Rect{0.6, 0.6, 0.65, 0.65});
    }
    ASSERT_TRUE(index->ApplyBatch(doomed).ok());
    (void)index->Checkpoint();
    (void)rig.pool->FlushAll();
    // No CommitBatch: crash.
  }
  rig.CrashAndReopen();
  auto index = SpatialIndex::Open(rig.pool.get(), master).value();
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());
  EXPECT_EQ(index->object_count(), 41u);
  EXPECT_EQ(
      index->WindowQuery(Rect{0.79, 0.79, 0.86, 0.86}).value().size(),
      1u);
  EXPECT_TRUE(index->WindowQuery(Rect{0.58, 0.58, 0.67, 0.67})
                  .value()
                  .empty());
}

TEST(Journal, AbortBatchRestoresPagerState) {
  CrashRig rig;
  EXPECT_TRUE(rig.pager->AbortBatch().IsInvalidArgument());  // no batch

  PageId meta;
  {
    auto tree = BTree::Create(rig.pool.get()).value();
    meta = tree->meta_page();
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(tree->Insert(Key(i), "base").ok());
    }
    ASSERT_TRUE(tree->Flush().ok());
    ASSERT_TRUE(rig.pool->FlushAll().ok());
    ASSERT_TRUE(rig.pager->CommitBatch().ok());
  }
  const uint32_t pages_before = rig.pager->page_count();
  const uint32_t live_before = rig.pager->live_page_count();

  // Doomed churn, flushed all the way to disk, then aborted at runtime.
  {
    auto tree = BTree::Open(rig.pool.get(), meta).value();
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(tree->Put(Key(i), "doomed").ok());
    }
    ASSERT_TRUE(tree->Flush().ok());
    ASSERT_TRUE(rig.pool->FlushAll().ok());
    ASSERT_TRUE(rig.pager->AbortBatch().ok());
  }
  EXPECT_FALSE(rig.pager->in_batch());
  EXPECT_EQ(rig.pager->page_count(), pages_before);
  EXPECT_EQ(rig.pager->live_page_count(), live_before);

  // The abort restored the file; drop the cache so reads see it.
  ASSERT_TRUE(rig.pool->Discard().ok());
  {
    auto tree = BTree::Open(rig.pool.get(), meta).value();
    ASSERT_TRUE(tree->CheckInvariants().ok());
    EXPECT_EQ(tree->size(), 200u);
    EXPECT_EQ(tree->Get(Key(5)).value(), "base");

    // A later batch commits durably.
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    ASSERT_TRUE(tree->Insert(Key(900), "after").ok());
    ASSERT_TRUE(tree->Flush().ok());
    ASSERT_TRUE(rig.pool->FlushAll().ok());
    ASSERT_TRUE(rig.pager->CommitBatch().ok());
  }
  rig.CrashAndReopen();
  {
    auto tree = BTree::Open(rig.pool.get(), meta).value();
    ASSERT_TRUE(tree->CheckInvariants().ok());
    EXPECT_EQ(tree->size(), 201u);
    EXPECT_EQ(tree->Get(Key(900)).value(), "after");

    // And an uncommitted later batch still rolls back on crash — the
    // abort left the journal machinery fully armed.
    ASSERT_TRUE(rig.pager->BeginBatch().ok());
    ASSERT_TRUE(tree->Put(Key(5), "doomed2").ok());
    ASSERT_TRUE(tree->Flush().ok());
    ASSERT_TRUE(rig.pool->FlushAll().ok());
  }
  rig.CrashAndReopen();
  auto tree = BTree::Open(rig.pool.get(), meta).value();
  ASSERT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->size(), 201u);
  EXPECT_EQ(tree->Get(Key(5)).value(), "base");
}

TEST(Journal, FailedApplyBatchLeavesIndexIntactAndPagerUsable) {
  CrashRig rig;
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto index = SpatialIndex::Create(rig.pool.get(), opt).value();
  ASSERT_TRUE(rig.pager->BeginBatch().ok());
  for (int i = 0; i < 60; ++i) {
    const double x = 0.01 * i + 0.01;
    ASSERT_TRUE(index->Insert(Rect{x, x, x + 0.005, x + 0.005}).ok());
  }
  const PageId master = index->Checkpoint().value();
  ASSERT_TRUE(rig.pool->FlushAll().ok());
  ASSERT_TRUE(rig.pager->CommitBatch().ok());
  const uint64_t epoch = index->write_epoch();

  // A batch that fails must apply nothing: not even the leading insert
  // may become visible (all-or-nothing), the pager must not be stuck
  // inside a batch, and the epoch must not move.
  WriteBatch doomed;
  doomed.Insert(Rect{0.8, 0.8, 0.85, 0.85});
  doomed.Erase(9999);  // no such object
  EXPECT_TRUE(index->ApplyBatch(doomed).status().IsNotFound());
  EXPECT_FALSE(rig.pager->in_batch());
  EXPECT_EQ(index->write_epoch(), epoch);
  EXPECT_EQ(index->object_count(), 60u);
  EXPECT_TRUE(
      index->WindowQuery(Rect{0.79, 0.79, 0.86, 0.86}).value().empty());

  // Same for erases of dead or batch-duplicated oids and invalid MBRs.
  ASSERT_TRUE(index->Erase(0).ok());
  WriteBatch dead;
  dead.Erase(0);
  EXPECT_TRUE(index->ApplyBatch(dead).status().IsNotFound());
  WriteBatch dup;
  dup.Erase(1);
  dup.Erase(1);
  EXPECT_TRUE(index->ApplyBatch(dup).status().IsNotFound());
  WriteBatch invalid;
  invalid.Insert(Rect{0.5, 0.5, 0.4, 0.4});
  EXPECT_TRUE(index->ApplyBatch(invalid).status().IsInvalidArgument());
  EXPECT_FALSE(rig.pager->in_batch());
  EXPECT_EQ(index->object_count(), 59u);
  auto probe = index->WindowQuery(Rect{0, 0, 1, 1}).value();
  EXPECT_TRUE(std::find(probe.begin(), probe.end(), 1u) != probe.end());

  // Later batches still journal and commit durably.
  WriteBatch good;
  good.Erase(1);
  good.Insert(Rect{0.8, 0.8, 0.85, 0.85});
  ASSERT_TRUE(index->ApplyBatch(good).ok());
  EXPECT_EQ(index->object_count(), 59u);

  rig.CrashAndReopen();
  auto reopened = SpatialIndex::Open(rig.pool.get(), master).value();
  ASSERT_TRUE(reopened->btree()->CheckInvariants().ok());
  EXPECT_EQ(reopened->object_count(), 59u);
  EXPECT_EQ(
      reopened->WindowQuery(Rect{0.79, 0.79, 0.86, 0.86}).value().size(),
      1u);
  auto hits = reopened->WindowQuery(Rect{0, 0, 1, 1}).value();
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 0u) == hits.end());
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 1u) == hits.end());
}

/// Delegating file that fails all I/O after `budget` operations — a
/// local copy of the failure_test rig, plus snapshots so crashes can be
/// simulated on top of the injected failures.
class FailingFile : public File {
 public:
  explicit FailingFile(int64_t budget) : budget_(budget) {}

  Status Read(uint64_t offset, size_t n, char* buf) const override {
    if (Spend()) return Status::IOError("injected read failure");
    return inner_.Read(offset, n, buf);
  }
  Status Write(uint64_t offset, const char* data, size_t n) override {
    if (Spend()) return Status::IOError("injected write failure");
    return inner_.Write(offset, data, n);
  }
  uint64_t Size() const override { return inner_.Size(); }
  Status Truncate(uint64_t size) override {
    if (Spend()) return Status::IOError("injected truncate failure");
    return inner_.Truncate(size);
  }
  Status Sync() override {
    if (Spend()) return Status::IOError("injected sync failure");
    return inner_.Sync();
  }

  /// Re-arms or disables the failure countdown without touching data.
  void set_budget(int64_t b) { budget_ = b; }

  std::vector<char> Snapshot() const { return inner_.Snapshot(); }

 private:
  bool Spend() const {
    if (budget_ < 0) return false;  // disabled
    if (budget_ == 0) return true;
    --budget_;
    return false;
  }

  MemFile inner_;
  mutable int64_t budget_;
};

TEST(Journal, MidBatchIoFailureRollsBackMemoryAndDisk) {
  // Sweep an I/O-failure point across ApplyBatch. Whatever the point —
  // the entry checkpoint, the ops, the commit, even inside the abort
  // itself — a failed batch must leave no trace: either the in-memory
  // index still answers exactly as before the batch (runtime rollback),
  // or the intact journal restores that state on reopen.
  const Rect world{0, 0, 1, 1};
  int failed = 0;
  int succeeded = 0;
  for (int64_t budget : {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                         1024, 2048, 4096}) {
    auto db_file = std::make_unique<FailingFile>(-1);
    FailingFile* db = db_file.get();
    auto journal_file = std::make_unique<MemFile>();
    MemFile* journal = journal_file.get();
    auto pager =
        Pager::Open(std::move(db_file), std::move(journal_file), 512)
            .value();
    BufferPool pool(pager.get(), 32);
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(4);
    auto index = SpatialIndex::Create(&pool, opt).value();
    ASSERT_TRUE(pager->BeginBatch().ok());
    for (int i = 0; i < 40; ++i) {
      const double x = 0.02 * i + 0.01;
      ASSERT_TRUE(index->Insert(Rect{x, x, x + 0.008, x + 0.008}).ok());
    }
    const PageId master = index->Checkpoint().value();
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(pager->CommitBatch().ok());

    auto baseline = index->WindowQuery(world).value();
    std::sort(baseline.begin(), baseline.end());

    WriteBatch batch;
    for (ObjectId oid = 0; oid < 10; ++oid) batch.Erase(oid);
    batch.Insert(Rect{0.9, 0.9, 0.95, 0.95});

    db->set_budget(budget);
    auto r = index->ApplyBatch(batch);
    db->set_budget(-1);

    if (r.ok()) {
      ++succeeded;
      EXPECT_EQ(index->object_count(), 31u);
      EXPECT_EQ(
          index->WindowQuery(Rect{0.89, 0.89, 0.96, 0.96}).value().size(),
          1u);
      continue;
    }
    ++failed;
    if (!pager->in_batch() && !r.status().IsCorruption()) {
      // Runtime rollback succeeded: pre-batch answers, and a follow-up
      // batch runs journaled as if the failure never happened.
      EXPECT_EQ(index->object_count(), 40u) << "budget " << budget;
      auto got = index->WindowQuery(world).value();
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, baseline) << "budget " << budget;
      EXPECT_TRUE(index->WindowQuery(Rect{0.89, 0.89, 0.96, 0.96})
                      .value()
                      .empty());
      ASSERT_TRUE(index->btree()->CheckInvariants().ok());
      ASSERT_TRUE(index->ApplyBatch(batch).ok()) << "budget " << budget;
      EXPECT_EQ(index->object_count(), 31u);
    } else {
      // The rollback itself hit the injected failure: the journal (or
      // the already-restored file) must recover the pre-batch index on
      // reopen — exactly the crash path.
      auto db2 = std::make_unique<MemFile>();
      db2->RestoreSnapshot(db->Snapshot());
      auto journal2 = std::make_unique<MemFile>();
      journal2->RestoreSnapshot(journal->Snapshot());
      auto pager2 =
          Pager::Open(std::move(db2), std::move(journal2), 512).value();
      BufferPool pool2(pager2.get(), 32);
      auto reopened = SpatialIndex::Open(&pool2, master).value();
      ASSERT_TRUE(reopened->btree()->CheckInvariants().ok());
      EXPECT_EQ(reopened->object_count(), 40u) << "budget " << budget;
      auto got = reopened->WindowQuery(world).value();
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, baseline) << "budget " << budget;
    }
  }
  // The sweep must exercise both outcomes.
  EXPECT_GT(failed, 0);
  EXPECT_GT(succeeded, 0);
}

TEST(Journal, BatchApiErrors) {
  auto pager = Pager::OpenInMemory(512);
  EXPECT_TRUE(pager->BeginBatch().IsInvalidArgument());  // no journal
  EXPECT_TRUE(pager->CommitBatch().IsInvalidArgument());

  CrashRig rig;
  ASSERT_TRUE(rig.pager->BeginBatch().ok());
  EXPECT_TRUE(rig.pager->BeginBatch().IsInvalidArgument());  // nested
  ASSERT_TRUE(rig.pager->CommitBatch().ok());
  ASSERT_TRUE(rig.pager->BeginBatch().ok());  // reusable
  ASSERT_TRUE(rig.pager->CommitBatch().ok());
}

}  // namespace
}  // namespace zdb
