// Copyright (c) zdb authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace zdb {
namespace {

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");

  const Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsCorruption());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
  EXPECT_EQ(Status::IOError().ToString(), "IOError");
}

Status FailsThrough() {
  ZDB_RETURN_IF_ERROR(Status::Corruption("inner"));
  return Status::OK();  // unreachable
}

TEST(Status, ReturnIfErrorMacro) {
  const Status s = FailsThrough();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "inner");
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(7), 42);

  Result<int> err(Status::InvalidArgument("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
  EXPECT_EQ(err.value_or(7), 7);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UseAssign(int v, int* out) {
  ZDB_ASSIGN_OR_RETURN(*out, Half(v));
  return Status::OK();
}

TEST(Result, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssign(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseAssign(9, &out).IsInvalidArgument());
}

TEST(Slice, CompareAndPrefix) {
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").compare(Slice("abc")), 0);
  // Unsigned comparison: 0x80 sorts above 0x7f.
  const char hi[] = {'\x80'};
  const char lo[] = {'\x7f'};
  EXPECT_GT(Slice(hi, 1).compare(Slice(lo, 1)), 0);

  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
  EXPECT_TRUE(Slice("abc").starts_with(Slice()));
}

TEST(Slice, RemovePrefixAndEquality) {
  Slice s("hello world");
  s.remove_prefix(6);
  EXPECT_EQ(s, Slice("world"));
  EXPECT_NE(s, Slice("worlds"));
  EXPECT_EQ(s.ToString(), "world");
}

TEST(Random, Deterministic) {
  Random a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Random, UniformBounds) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const double u = rng.UniformDouble(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Random, GaussianMoments) {
  Random rng(6);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(10.0, 2.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Random, Bernoulli) {
  Random rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace zdb
