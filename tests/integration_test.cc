// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Cross-module integration: a mixed insert/erase/query session at scale
// with a tiny buffer pool (heavy eviction traffic), verified against an
// in-memory model; plus an I/O-accounting sanity check that redundancy
// actually buys fewer page accesses on the pathological workload.

#include <gtest/gtest.h>

#include <algorithm>

#include "bench_util/runner.h"
#include "core/spatial_index.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

TEST(Integration, MixedSessionUnderTinyPool) {
  // Pool of 12 frames: every operation fights for cache.
  Env env = MakeEnv(512, 12);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  auto index = SpatialIndex::Create(env.pool.get(), opt).value();

  DataGenOptions dg;
  dg.distribution = Distribution::kContours;
  const auto data = GenerateData(3000, dg);

  std::vector<bool> alive(data.size(), false);
  Random rng(55);
  size_t next_insert = 0;

  for (int op = 0; op < 4500; ++op) {
    const int kind = static_cast<int>(rng.Uniform(100));
    if (kind < 60 && next_insert < data.size()) {
      ASSERT_EQ(index->Insert(data[next_insert]).value(),
                static_cast<ObjectId>(next_insert));
      alive[next_insert] = true;
      ++next_insert;
    } else if (kind < 75 && next_insert > 0) {
      const ObjectId victim =
          static_cast<ObjectId>(rng.Uniform(next_insert));
      Status s = index->Erase(victim);
      if (alive[victim]) {
        ASSERT_TRUE(s.ok()) << s.ToString();
        alive[victim] = false;
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else if (kind < 90) {
      const auto w = GenerateWindows(1, 0.005,
                                     QueryGenOptions{rng.Next(), 0.0})[0];
      auto got = index->WindowQuery(w).value();
      std::sort(got.begin(), got.end());
      std::vector<ObjectId> expect;
      for (size_t i = 0; i < next_insert; ++i) {
        if (alive[i] && data[i].Intersects(w)) {
          expect.push_back(static_cast<ObjectId>(i));
        }
      }
      ASSERT_EQ(got, expect) << "op " << op;
    } else {
      const Point p{rng.NextDouble(), rng.NextDouble()};
      auto got = index->PointQuery(p).value();
      std::sort(got.begin(), got.end());
      std::vector<ObjectId> expect;
      for (size_t i = 0; i < next_insert; ++i) {
        if (alive[i] && data[i].Contains(p)) {
          expect.push_back(static_cast<ObjectId>(i));
        }
      }
      ASSERT_EQ(got, expect) << "op " << op;
    }
  }
  ASSERT_TRUE(index->btree()->CheckInvariants().ok());
}

TEST(Integration, RedundancyReducesAccessesOnDiagonalData) {
  DataGenOptions dg;
  dg.distribution = Distribution::kDiagonal;
  const auto data = GenerateData(5000, dg);
  const auto windows = GenerateWindows(20, 0.0001, QueryGenOptions{});

  double cost_k1 = 0, cost_k8 = 0;
  for (uint32_t k : {1u, 8u}) {
    Env env = MakeEnv();
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(k);
    auto index = BuildZIndex(&env, data, opt).value();
    auto rr = RunWindowQueries(&env, index.get(), windows).value();
    (k == 1 ? cost_k1 : cost_k8) = rr.avg_accesses;
  }
  // The paper's headline effect: the non-redundant scheme pays several
  // times more page accesses for tiny queries on diagonal data.
  EXPECT_GT(cost_k1, 2.0 * cost_k8)
      << "k=1 " << cost_k1 << " vs k=8 " << cost_k8;
}

TEST(Integration, IoCountersAreConsistent) {
  Env env = MakeEnv(512, 64);
  SpatialIndexOptions opt;
  auto index = SpatialIndex::Create(env.pool.get(), opt).value();
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  for (const Rect& r : GenerateData(2000, dg)) {
    ASSERT_TRUE(index->Insert(r).ok());
  }
  ASSERT_TRUE(env.pool->FlushAll().ok());
  const IoStats s = env.pager->io_stats();
  // Misses reach the pager as reads; evictions of dirty pages as writes.
  EXPECT_GE(s.pool_misses + s.pool_hits, s.page_reads);
  EXPECT_GT(s.pool_hits, 0u);
  EXPECT_GT(s.page_writes, 0u);

  // A repeated identical query with a warm pool costs nothing.
  const Rect w{0.4, 0.4, 0.41, 0.41};
  (void)index->WindowQuery(w).value();
  const IoStats before = env.pager->io_stats();
  (void)index->WindowQuery(w).value();
  EXPECT_EQ(env.pager->io_stats().Since(before).page_reads, 0u);
}

}  // namespace
}  // namespace zdb
