// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Boundary conditions across modules: world-border geometry, windows
// exceeding the world, grid-aligned coordinates, degenerate queries, and
// cursor behaviour across leaf boundaries after churn.

#include <gtest/gtest.h>

#include <algorithm>

#include "btree/btree.h"
#include "btree/cursor.h"
#include "core/spatial_index.h"
#include "storage/pager.h"
#include "workload/datagen.h"

namespace zdb {
namespace {

struct Fixture {
  Fixture() : pager(Pager::OpenInMemory(512)), pool(pager.get(), 64) {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(4);
    index = SpatialIndex::Create(&pool, opt).value();
  }
  std::unique_ptr<Pager> pager;
  BufferPool pool;
  std::unique_ptr<SpatialIndex> index;
};

TEST(Edge, ObjectsOnWorldBorder) {
  Fixture f;
  const Rect corner{0.0, 0.0, 0.001, 0.001};
  const Rect edge_strip{0.0, 0.4, 0.002, 0.6};
  const Rect far_corner{0.998, 0.998, 0.9999, 0.9999};
  const ObjectId a = f.index->Insert(corner).value();
  const ObjectId b = f.index->Insert(edge_strip).value();
  const ObjectId c = f.index->Insert(far_corner).value();

  EXPECT_EQ(f.index->PointQuery(Point{0.0, 0.0}).value(),
            std::vector<ObjectId>{a});
  EXPECT_EQ(f.index->PointQuery(Point{0.0, 0.5}).value(),
            std::vector<ObjectId>{b});
  EXPECT_EQ(f.index->PointQuery(Point{0.999, 0.999}).value(),
            std::vector<ObjectId>{c});
}

TEST(Edge, WindowsExceedingTheWorld) {
  Fixture f;
  const ObjectId a = f.index->Insert(Rect{0.1, 0.1, 0.2, 0.2}).value();
  // Windows sticking out of the world clamp to the border cells.
  auto got = f.index->WindowQuery(Rect{-5.0, -5.0, 5.0, 5.0}).value();
  EXPECT_EQ(got, std::vector<ObjectId>{a});
  EXPECT_TRUE(
      f.index->WindowQuery(Rect{-5.0, -5.0, -1.0, -1.0}).value().empty() ||
      // Clamped entirely onto the border cell column; the object is not
      // there, so the result must still be empty.
      f.index->WindowQuery(Rect{-5.0, -5.0, -1.0, -1.0}).value().empty());
}

TEST(Edge, GridAlignedCoordinates) {
  // Coordinates that are exact multiples of the cell size (2^-16).
  Fixture f;
  const double cell = 1.0 / 65536.0;
  const Rect aligned{128 * cell, 256 * cell, 512 * cell, 1024 * cell};
  const ObjectId a = f.index->Insert(aligned).value();
  EXPECT_EQ(f.index->WindowQuery(aligned).value(), std::vector<ObjectId>{a});
  // Touching window (shares only the right edge).
  const Rect touching{512 * cell, 256 * cell, 600 * cell, 1024 * cell};
  EXPECT_EQ(f.index->WindowQuery(touching).value(),
            std::vector<ObjectId>{a});
  // One cell beyond: no contact.
  const Rect beyond{513 * cell, 256 * cell, 600 * cell, 1024 * cell};
  EXPECT_TRUE(f.index->WindowQuery(beyond).value().empty());
}

TEST(Edge, DegenerateWindow) {
  Fixture f;
  const ObjectId a = f.index->Insert(Rect{0.3, 0.3, 0.5, 0.5}).value();
  // Zero-area window inside the object.
  EXPECT_EQ(f.index->WindowQuery(Rect{0.4, 0.4, 0.4, 0.4}).value(),
            std::vector<ObjectId>{a});
  // Line-shaped window crossing the object.
  EXPECT_EQ(f.index->WindowQuery(Rect{0.0, 0.4, 1.0, 0.4}).value(),
            std::vector<ObjectId>{a});
}

TEST(Edge, ManyObjectsInOneCell) {
  // Heavy duplication within a single grid cell: the index must store
  // and retrieve all of them (distinct oids disambiguate equal keys).
  Fixture f;
  const Rect spot{0.123456, 0.654321, 0.1234561, 0.6543211};
  std::vector<ObjectId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(f.index->Insert(spot).value());
  }
  auto got = f.index->WindowQuery(Rect{0.12, 0.65, 0.13, 0.66}).value();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, ids);
  QueryStats qs;
  auto pt = f.index->PointQuery(spot.center(), &qs).value();
  EXPECT_EQ(pt.size(), 200u);
}

TEST(Edge, CursorAcrossLeavesAfterChurn) {
  auto pager = Pager::OpenInMemory(256);
  BufferPool pool(pager.get(), 64);
  auto tree = BTree::Create(&pool).value();

  // Build, delete a swath in the middle, and verify the scan stitches
  // across the (rebalanced) leaf chain.
  auto key = [](int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%06d", i);
    return std::string(buf);
  };
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree->Insert(key(i), "v").ok());
  }
  for (int i = 300; i < 700; ++i) {
    ASSERT_TRUE(tree->Delete(key(i)).ok());
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());

  auto cur = tree->Seek(key(295)).value();
  std::vector<int> seen;
  while (cur.Valid() && seen.size() < 10) {
    seen.push_back(std::stoi(cur.key().ToString().substr(1)));
    ASSERT_TRUE(cur.Next().ok());
  }
  EXPECT_EQ(seen, (std::vector<int>{295, 296, 297, 298, 299, 700, 701, 702,
                                    703, 704}));
}

TEST(Edge, QueryStatsIdentityUnderBigMin) {
  Fixture f;
  DataGenOptions dg;
  dg.distribution = Distribution::kDiagonal;
  const auto data = GenerateData(2000, dg);
  for (const Rect& r : data) ASSERT_TRUE(f.index->Insert(r).ok());

  auto pager2 = Pager::OpenInMemory(512);
  BufferPool pool2(pager2.get(), 64);
  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);
  opt.use_bigmin = true;
  auto bigmin_index = SpatialIndex::Create(&pool2, opt).value();
  for (const Rect& r : data) ASSERT_TRUE(bigmin_index->Insert(r).ok());

  const Rect w{0.4, 0.38, 0.5, 0.48};
  QueryStats qs_plain, qs_bigmin;
  auto a = f.index->WindowQuery(w, &qs_plain).value();
  auto b = bigmin_index->WindowQuery(w, &qs_bigmin).value();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  // BIGMIN uses a single query element and skips instead of decomposing.
  EXPECT_EQ(qs_bigmin.query_elements, 1u);
  EXPECT_GT(qs_bigmin.bigmin_jumps, 0u);
  EXPECT_EQ(qs_plain.bigmin_jumps, 0u);
}

TEST(Edge, NearestNeighborsReportsRoundsAndStats) {
  Fixture f;
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformSmall;
  for (const Rect& r : GenerateData(1000, dg)) {
    ASSERT_TRUE(f.index->Insert(r).ok());
  }
  QueryStats qs;
  uint32_t rounds = 0;
  auto got = f.index->NearestNeighbors(Point{0.5, 0.5}, 10, &qs, &rounds);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().size(), 10u);
  EXPECT_GE(rounds, 1u);
  EXPECT_GT(qs.index_entries, 0u);
}

}  // namespace
}  // namespace zdb
