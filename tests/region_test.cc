// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Region-generic decomposition: coverage and budget invariants for
// polygon regions, and the consistency of the generic rectangle path
// with the integer-exact one.

#include "decompose/region.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace zdb {
namespace {

Polygon RandomStar(Random* rng, double cx, double cy, double radius) {
  std::vector<Point> ring;
  const int sides = 5 + static_cast<int>(rng->Uniform(6));
  for (int i = 0; i < sides; ++i) {
    const double ang = 2 * 3.14159265358979 * i / sides;
    const double r = radius * rng->UniformDouble(0.4, 1.0);
    ring.push_back(Point{cx + r * std::cos(ang), cy + r * std::sin(ang)});
  }
  return Polygon(std::move(ring));
}

void CheckRegionInvariants(const Region& region, const SpaceMapper& mapper,
                           const RegionDecomposition& d) {
  ASSERT_FALSE(d.elements.empty());
  // Disjoint, canonically ordered.
  for (size_t i = 1; i < d.elements.size(); ++i) {
    ASSERT_GT(d.elements[i].zmin, d.elements[i - 1].zmax());
  }
  // Coverage: random points inside the region fall inside some element.
  Random rng(77);
  const Rect bounds = region.WorldBounds();
  int checked = 0;
  for (int i = 0; i < 2000 && checked < 300; ++i) {
    const Point p{rng.UniformDouble(bounds.xlo, bounds.xhi),
                  rng.UniformDouble(bounds.ylo, bounds.yhi)};
    const Rect probe{p.x, p.y, p.x, p.y};
    if (region.IntersectionArea(Rect{p.x - 1e-9, p.y - 1e-9, p.x + 1e-9,
                                     p.y + 1e-9}) <= 0) {
      continue;  // point (probably) not inside the region
    }
    (void)probe;
    ++checked;
    bool covered = false;
    for (const ZElement& e : d.elements) {
      const Rect cell = mapper.ToWorld(e.ToGridRect());
      if (cell.Contains(p)) {
        covered = true;
        break;
      }
    }
    ASSERT_TRUE(covered) << "uncovered point " << p.x << "," << p.y;
  }
  ASSERT_GT(checked, 50);
  ASSERT_GE(d.covered_area, d.object_area - 1e-9);
}

TEST(RegionDecompose, PolygonSizeBound) {
  Random rng(51);
  const SpaceMapper mapper;
  for (int trial = 0; trial < 30; ++trial) {
    const Polygon poly = RandomStar(&rng, rng.UniformDouble(0.3, 0.7),
                                    rng.UniformDouble(0.3, 0.7), 0.2);
    const PolygonRegion region(&poly);
    for (uint32_t k : {1u, 4u, 16u}) {
      const auto d =
          DecomposeRegion(region, mapper, DecomposeOptions::SizeBound(k));
      ASSERT_LE(d.elements.size(), k);
      CheckRegionInvariants(region, mapper, d);
    }
  }
}

TEST(RegionDecompose, PolygonErrorBound) {
  Random rng(52);
  const SpaceMapper mapper;
  const Polygon poly = RandomStar(&rng, 0.5, 0.5, 0.25);
  const PolygonRegion region(&poly);
  double prev_error = 1e300;
  for (double eps : {2.0, 1.0, 0.5, 0.2, 0.1}) {
    const auto d = DecomposeRegion(region, mapper,
                                   DecomposeOptions::ErrorBound(eps, 2048));
    CheckRegionInvariants(region, mapper, d);
    EXPECT_LE(d.error(), eps + 1e-9) << "eps=" << eps;
    EXPECT_LE(d.error(), prev_error + 1e-9);
    prev_error = d.error();
  }
}

TEST(RegionDecompose, ExactGeometryBeatsMbrForSlimDiagonal) {
  // A thin diagonal sliver: its MBR is mostly dead space, so decomposing
  // the exact geometry gives a far smaller covered area at equal element
  // budget — the motivation for region-generic decomposition.
  const Polygon sliver(
      {{0.1, 0.1}, {0.12, 0.1}, {0.9, 0.88}, {0.9, 0.9}, {0.88, 0.9}});
  const SpaceMapper mapper;
  const PolygonRegion exact(&sliver);
  const RectRegion mbr(sliver.Bounds());

  const auto opt = DecomposeOptions::SizeBound(16);
  const auto d_exact = DecomposeRegion(exact, mapper, opt);
  const auto d_mbr = DecomposeRegion(mbr, mapper, opt);
  EXPECT_LT(d_exact.covered_area, d_mbr.covered_area / 4)
      << "exact " << d_exact.covered_area << " mbr " << d_mbr.covered_area;
}

TEST(RegionDecompose, RectRegionAgreesWithIntegerPath) {
  Random rng(53);
  const SpaceMapper mapper;
  for (int trial = 0; trial < 50; ++trial) {
    const double x = rng.UniformDouble(0.0, 0.8);
    const double y = rng.UniformDouble(0.0, 0.8);
    const Rect rect{x, y, x + rng.UniformDouble(0.01, 0.19),
                    y + rng.UniformDouble(0.01, 0.19)};
    const RectRegion region(rect);
    // The two paths use different dead-space arithmetic (world area vs
    // grid cells) but identical splitting structure; with the same
    // budget they must produce identical element sets for rectangles
    // aligned to the same grid footprint.
    const auto generic =
        DecomposeRegion(region, mapper, DecomposeOptions::SizeBound(8));
    const auto integer = Decompose(mapper.ToGrid(rect), mapper.bits(),
                                   DecomposeOptions::SizeBound(8));
    ASSERT_EQ(generic.elements, integer.elements) << rect.ToString();
  }
}

}  // namespace
}  // namespace zdb
