// Copyright (c) zdb authors. Licensed under the MIT license.

#include "core/object_store.h"

#include <gtest/gtest.h>

#include "storage/pager.h"

namespace zdb {
namespace {

TEST(ObjectStore, InsertFetchRoundTrip) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 8);
  ObjectStore store(&pool);

  const Rect r{0.1, 0.2, 0.3, 0.4};
  const ObjectId oid = store.Insert(r, 42).value();
  EXPECT_EQ(oid, 0u);
  const ObjectRecord rec = store.Fetch(oid).value();
  EXPECT_EQ(rec.mbr, r);
  EXPECT_EQ(rec.payload, 42u);
  EXPECT_TRUE(rec.live);
}

TEST(ObjectStore, DenseIdsAcrossPages) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 8);
  ObjectStore store(&pool);
  const uint32_t per_page = store.records_per_page();
  ASSERT_GT(per_page, 1u);

  const uint32_t n = per_page * 3 + 5;
  for (uint32_t i = 0; i < n; ++i) {
    const Rect r{i * 1e-4, 0, i * 1e-4 + 1e-5, 1e-5};
    EXPECT_EQ(store.Insert(r).value(), i);
  }
  EXPECT_EQ(store.page_count(), 4u);
  EXPECT_EQ(store.size(), n);
  for (uint32_t i = 0; i < n; i += 7) {
    EXPECT_DOUBLE_EQ(store.Fetch(i).value().mbr.xlo, i * 1e-4);
  }
}

TEST(ObjectStore, EraseTombstones) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 8);
  ObjectStore store(&pool);
  const ObjectId oid = store.Insert(Rect{0, 0, 1, 1}).value();
  ASSERT_TRUE(store.Erase(oid).ok());
  EXPECT_FALSE(store.Fetch(oid).value().live);
  EXPECT_TRUE(store.Erase(oid).IsNotFound());  // double erase
}

TEST(ObjectStore, OutOfRangeFails) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 8);
  ObjectStore store(&pool);
  EXPECT_TRUE(store.Fetch(0).status().IsNotFound());
  EXPECT_TRUE(store.Erase(5).IsNotFound());
}

TEST(ObjectStore, FetchCostsPageAccessWhenCold) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 4);
  ObjectStore store(&pool);
  for (int i = 0; i < 100; ++i) {
    (void)store.Insert(Rect{0, 0, 0.1, 0.1});
  }
  ASSERT_TRUE(pool.Clear().ok());
  const IoStats before = pager->io_stats();
  (void)store.Fetch(0).value();
  EXPECT_EQ(pager->io_stats().Since(before).page_reads, 1u);
  // Warm fetch of a neighbor on the same page: no new read.
  const IoStats warm = pager->io_stats();
  (void)store.Fetch(1).value();
  EXPECT_EQ(pager->io_stats().Since(warm).page_reads, 0u);
}

}  // namespace
}  // namespace zdb
