// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Odds and ends: bench-table rendering, cursor error paths, seek
// boundary semantics, polygon-store capacity across page sizes.

#include <gtest/gtest.h>

#include "bench_util/table.h"
#include "btree/btree.h"
#include "btree/cursor.h"
#include "core/polygon_store.h"
#include "storage/pager.h"

namespace zdb {
namespace {

TEST(Table, CsvRendering) {
  Table t("demo", {"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "2.5"});
  EXPECT_EQ(t.ToCsv(), "name,value\nalpha,1\nbeta,2.5\n");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.0, 0), "3");
  EXPECT_EQ(Fmt(uint64_t{18446744073709551615ULL}),
            "18446744073709551615");
  EXPECT_EQ(Fmt(-5), "-5");
}

TEST(Cursor, NextOnInvalidCursorFails) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 8);
  auto tree = BTree::Create(&pool).value();
  auto cur = tree->SeekFirst().value();
  ASSERT_FALSE(cur.Valid());
  EXPECT_TRUE(cur.Next().IsInvalidArgument());
}

TEST(Cursor, SeekBoundarySemantics) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 16);
  auto tree = BTree::Create(&pool).value();
  for (const char* k : {"b", "d", "f"}) {
    ASSERT_TRUE(tree->Insert(k, "v").ok());
  }
  // Seek to an existing key lands on it.
  EXPECT_EQ(tree->Seek("d").value().key().ToString(), "d");
  // Seek between keys lands on the successor.
  EXPECT_EQ(tree->Seek("c").value().key().ToString(), "d");
  // Seek("") equals SeekFirst.
  EXPECT_EQ(tree->Seek("").value().key().ToString(), "b");
  // Seek past the last key is invalid.
  EXPECT_FALSE(tree->Seek("z").value().Valid());
}

TEST(PolygonStore, CapacityScalesWithPageSize) {
  for (uint32_t page_size : {256u, 512u, 4096u}) {
    auto pager = Pager::OpenInMemory(page_size);
    BufferPool pool(pager.get(), 8);
    PolygonStore store(&pool);
    // A full-capacity ring round-trips.
    std::vector<Point> ring(store.max_vertices());
    for (size_t i = 0; i < ring.size(); ++i) {
      ring[i] = Point{static_cast<double>(i), static_cast<double>(i) / 2};
    }
    const PolyRef ref = store.Insert(Polygon(ring)).value();
    const Polygon got = store.Fetch(ref).value();
    ASSERT_EQ(got.size(), ring.size());
    EXPECT_EQ(got.vertices().front(), ring.front());
    EXPECT_EQ(got.vertices().back(), ring.back());
    // One more vertex is rejected.
    ring.push_back(Point{0, 0});
    EXPECT_TRUE(store.Insert(Polygon(ring)).status().IsInvalidArgument());
  }
}

}  // namespace
}  // namespace zdb
