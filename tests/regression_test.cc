// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Regression tests for the hot-path bugfix sweep:
//   * KnnTermination      — NearestNeighbors must terminate for k = 0,
//                           empty index, k >= object_count, and query
//                           points far outside the world;
//   * CheckpointPins      — Checkpoint() leaves no internal pins and
//                           FlushAll() reports pinned dirty pages with a
//                           clear status instead of a silent partial
//                           flush;
//   * EraseDedup          — redundant z-entries of a tombstoned object
//                           never resurface in any query or join;
//   * DegenerateGeometry  — zero-area, world-boundary and out-of-world
//                           rectangles clamp identically on the insert
//                           and query paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "btree/cursor.h"
#include "core/spatial_index.h"
#include "geom/grid.h"
#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {
namespace {

struct Fixture {
  explicit Fixture(SpatialIndexOptions opt = MakeOptions(),
                   size_t pool_pages = 128)
      : pager(Pager::OpenInMemory(512)), pool(pager.get(), pool_pages) {
    index = SpatialIndex::Create(&pool, opt).value();
  }

  static SpatialIndexOptions MakeOptions() {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(4);
    return opt;
  }

  std::unique_ptr<Pager> pager;
  BufferPool pool;
  std::unique_ptr<SpatialIndex> index;
};

// --------------------------------------------------------- KnnTermination

TEST(KnnTermination, EmptyIndexAndKZero) {
  Fixture f;
  uint32_t rounds = 99;
  EXPECT_TRUE(
      f.index->NearestNeighbors(Point{0.5, 0.5}, 5, nullptr, &rounds)
          .value()
          .empty());
  EXPECT_EQ(rounds, 0u);

  ASSERT_TRUE(f.index->Insert(Rect{0.1, 0.1, 0.2, 0.2}).ok());
  EXPECT_TRUE(f.index->NearestNeighbors(Point{0.5, 0.5}, 0).value().empty());
}

TEST(KnnTermination, KMeetsOrExceedsObjectCount) {
  Fixture f;
  std::vector<ObjectId> ids;
  for (int i = 0; i < 7; ++i) {
    const double x = 0.1 + 0.1 * i;
    ids.push_back(f.index->Insert(Rect{x, 0.4, x + 0.05, 0.45}).value());
  }
  for (size_t k : {7u, 8u, 100u}) {
    uint32_t rounds = 0;
    auto got =
        f.index->NearestNeighbors(Point{0.12, 0.42}, k, nullptr, &rounds)
            .value();
    ASSERT_EQ(got.size(), 7u) << "k=" << k;
    EXPECT_EQ(rounds, 1u) << "k=" << k;
    // Every live object is returned, closest first.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(got[i - 1].second, got[i].second);
    }
    std::vector<ObjectId> returned;
    for (const auto& [oid, dist] : got) returned.push_back(oid);
    std::sort(returned.begin(), returned.end());
    EXPECT_EQ(returned, ids);
  }
}

TEST(KnnTermination, SparseIndexFindsTheLonelyObject) {
  Fixture f;
  const ObjectId oid = f.index->Insert(Rect{0.9, 0.9, 0.95, 0.95}).value();
  auto got = f.index->NearestNeighbors(Point{0.05, 0.05}, 3).value();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, oid);
  EXPECT_GT(got[0].second, 1.0);
}

TEST(KnnTermination, QueryPointFarOutsideWorld) {
  Fixture f;
  ASSERT_TRUE(f.index->Insert(Rect{0.1, 0.1, 0.2, 0.2}).ok());
  ASSERT_TRUE(f.index->Insert(Rect{0.7, 0.7, 0.8, 0.8}).ok());
  ASSERT_TRUE(f.index->Insert(Rect{0.4, 0.4, 0.5, 0.5}).ok());
  // The first expanding windows do not even reach the world; the search
  // must keep growing instead of looping or erroring.
  uint32_t rounds = 0;
  auto got =
      f.index->NearestNeighbors(Point{50.0, 50.0}, 2, nullptr, &rounds)
          .value();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_GE(rounds, 1u);
  // Nearest to (50, 50) is the upper-right object.
  EXPECT_LE(got[0].second, got[1].second);
}

// --------------------------------------------------------- CheckpointPins

TEST(CheckpointPins, CheckpointReleasesItsInternalPins) {
  Fixture f;
  for (const Rect& r : GenerateData(300, DataGenOptions{})) {
    ASSERT_TRUE(f.index->Insert(r).ok());
  }
  ASSERT_TRUE(f.index->Checkpoint().ok());
  // No pin survives Checkpoint, so a full flush succeeds immediately.
  EXPECT_EQ(f.pool.pinned_pages(), 0u);
  EXPECT_TRUE(f.pool.FlushAll().ok());
  EXPECT_TRUE(f.pager->Sync().ok());
}

TEST(CheckpointPins, FlushAllReportsPinnedDirtyPages) {
  auto pager = Pager::OpenInMemory(512);
  BufferPool pool(pager.get(), 16);

  auto clean = pool.New().value();
  const PageId clean_id = clean.id();
  clean.mutable_data()[0] = 'a';
  clean.Release();

  auto pinned = pool.New().value();
  pinned.mutable_data()[0] = 'b';
  const PageId pinned_id = pinned.id();

  // The unpinned dirty page must be flushed even though the call fails.
  const Status st = pool.FlushAll();
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("pinned"), std::string::npos);
  EXPECT_NE(st.message().find(std::to_string(pinned_id)), std::string::npos);
  {
    std::vector<char> buf(512);
    ASSERT_TRUE(pager->ReadPage(clean_id, buf.data()).ok());
    EXPECT_EQ(buf[0], 'a');  // no silent partial flush the other way
  }

  // Releasing the pin unblocks the retry.
  pinned.Release();
  EXPECT_TRUE(pool.FlushAll().ok());
  std::vector<char> buf(512);
  ASSERT_TRUE(pager->ReadPage(pinned_id, buf.data()).ok());
  EXPECT_EQ(buf[0], 'b');
}

TEST(CheckpointPins, CheckpointWithLiveReadCursorSucceeds) {
  Fixture f;
  for (const Rect& r : GenerateData(200, DataGenOptions{})) {
    ASSERT_TRUE(f.index->Insert(r).ok());
  }
  // Settle the insert dirt so the cursor pins a *clean* leaf page.
  ASSERT_TRUE(f.pool.FlushAll().ok());
  auto cursor = f.index->btree()->SeekFirst().value();
  ASSERT_TRUE(cursor.Valid());
  EXPECT_GE(f.pool.pinned_pages(), 1u);

  auto master = f.index->Checkpoint();
  ASSERT_TRUE(master.ok());
  // The cursor's page is clean, so even a full flush goes through.
  EXPECT_TRUE(f.pool.FlushAll().ok());
}

// ------------------------------------------------------------- EraseDedup

TEST(EraseDedup, ErasedObjectsNeverResurface) {
  Fixture f;
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformLarge;  // high redundancy
  const auto data = GenerateData(400, dg);
  std::vector<ObjectId> ids;
  for (const Rect& r : data) ids.push_back(f.index->Insert(r).value());

  // Erase every third object.
  std::set<ObjectId> erased;
  for (size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(f.index->Erase(ids[i]).ok());
    erased.insert(ids[i]);
  }

  for (const auto& w : GenerateWindows(30, 0.05, QueryGenOptions{})) {
    const auto hits = f.index->WindowQuery(w).value();
    for (ObjectId oid : hits) {
      EXPECT_FALSE(erased.count(oid)) << "erased object " << oid
                                      << " resurfaced";
    }
  }
  for (const auto& p : GeneratePoints(50, 9)) {
    const auto point_hits = f.index->PointQuery(p).value();
    for (ObjectId oid : point_hits) {
      EXPECT_FALSE(erased.count(oid));
    }
    const auto knn_hits = f.index->NearestNeighbors(p, 5).value();
    for (const auto& [oid, dist] : knn_hits) {
      EXPECT_FALSE(erased.count(oid));
    }
  }
}

TEST(EraseDedup, EraseThenReinsertGetsFreshId) {
  Fixture f;
  const Rect r{0.3, 0.3, 0.35, 0.34};
  const ObjectId first = f.index->Insert(r).value();
  ASSERT_TRUE(f.index->Erase(first).ok());
  EXPECT_TRUE(f.index->Erase(first).IsNotFound());  // double erase

  const ObjectId second = f.index->Insert(r).value();
  EXPECT_NE(first, second);  // ids are never recycled

  auto hits = f.index->WindowQuery(Rect{0.25, 0.25, 0.4, 0.4}).value();
  EXPECT_EQ(hits, std::vector<ObjectId>{second});
  EXPECT_EQ(f.index->object_count(), 1u);
}

TEST(EraseDedup, SpatialJoinSkipsTombstones) {
  Fixture fa, fb;
  const auto data = GenerateData(120, DataGenOptions{});
  std::vector<ObjectId> a_ids, b_ids;
  for (const Rect& r : data) a_ids.push_back(fa.index->Insert(r).value());
  for (const Rect& r : data) b_ids.push_back(fb.index->Insert(r).value());
  for (size_t i = 0; i < a_ids.size(); i += 2) {
    ASSERT_TRUE(fa.index->Erase(a_ids[i]).ok());
  }
  auto pairs = SpatialJoin(fa.index.get(), fb.index.get()).value();
  EXPECT_FALSE(pairs.empty());
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(a % 2, 1u) << "tombstoned object " << a << " joined";
  }
}

// ---------------------------------------------------- DegenerateGeometry

TEST(DegenerateGeometry, ZeroAreaRects) {
  Fixture f;
  const ObjectId pt = f.index->Insert(Rect{0.3, 0.4, 0.3, 0.4}).value();
  const ObjectId seg = f.index->Insert(Rect{0.6, 0.2, 0.6, 0.5}).value();

  // Found by overlapping windows…
  EXPECT_EQ(f.index->WindowQuery(Rect{0.25, 0.35, 0.35, 0.45}).value(),
            std::vector<ObjectId>{pt});
  EXPECT_EQ(f.index->WindowQuery(Rect{0.55, 0.3, 0.65, 0.4}).value(),
            std::vector<ObjectId>{seg});
  // …by a zero-area query window exactly on them…
  EXPECT_EQ(f.index->WindowQuery(Rect{0.3, 0.4, 0.3, 0.4}).value(),
            std::vector<ObjectId>{pt});
  // …and by point queries at their location.
  EXPECT_EQ(f.index->PointQuery(Point{0.3, 0.4}).value(),
            std::vector<ObjectId>{pt});
  EXPECT_EQ(f.index->PointQuery(Point{0.6, 0.35}).value(),
            std::vector<ObjectId>{seg});
}

TEST(DegenerateGeometry, WorldBoundaryObjects) {
  Fixture f;
  // Touching the world's upper-right corner and sitting exactly on the
  // x = 1 border line (zero width at the far edge).
  const ObjectId corner = f.index->Insert(Rect{0.9, 0.95, 1.0, 1.0}).value();
  const ObjectId edge = f.index->Insert(Rect{1.0, 0.5, 1.0, 0.6}).value();
  const ObjectId origin = f.index->Insert(Rect{0.0, 0.0, 0.05, 0.05}).value();

  EXPECT_EQ(f.index->WindowQuery(Rect{0.95, 0.97, 1.0, 1.0}).value(),
            std::vector<ObjectId>{corner});
  EXPECT_EQ(f.index->WindowQuery(Rect{0.98, 0.52, 1.0, 0.55}).value(),
            std::vector<ObjectId>{edge});
  EXPECT_EQ(f.index->WindowQuery(Rect{0.0, 0.0, 0.01, 0.01}).value(),
            std::vector<ObjectId>{origin});
  // The whole world returns everything exactly once.
  EXPECT_EQ(f.index->WindowQuery(Rect{0, 0, 1, 1}).value().size(), 3u);
}

TEST(DegenerateGeometry, OutOfWorldClampsConsistently) {
  Fixture f;
  // Straddles the world's upper-right corner; grid-clamps to the border
  // cells on insert.
  const ObjectId big = f.index->Insert(Rect{0.9, 0.9, 1.5, 1.5}).value();

  // In-world window over the clamped region finds it.
  EXPECT_EQ(f.index->WindowQuery(Rect{0.95, 0.95, 1.0, 1.0}).value(),
            std::vector<ObjectId>{big});
  // An out-of-world window that intersects it in world space clamps to
  // the same border cells and still finds it.
  EXPECT_EQ(f.index->WindowQuery(Rect{1.1, 1.1, 1.4, 1.4}).value(),
            std::vector<ObjectId>{big});
  // An out-of-world window beyond its extent clamps to the same cells
  // but is rejected by exact refinement.
  EXPECT_TRUE(f.index->WindowQuery(Rect{1.6, 1.6, 2.0, 2.0}).value().empty());
  // Inverted windows are rejected, not clamped into validity.
  EXPECT_TRUE(
      f.index->WindowQuery(Rect{0.5, 0.5, 0.4, 0.6}).status()
          .IsInvalidArgument());
}

TEST(DegenerateGeometry, MapperClampsInsertAndQueryIdentically) {
  const SpaceMapper mapper(Rect{0.0, 0.0, 1.0, 1.0}, 8);
  // Any point at or beyond a world edge lands in the border cell.
  EXPECT_EQ(mapper.ToGridX(1.0), mapper.max_coord());
  EXPECT_EQ(mapper.ToGridX(7.5), mapper.max_coord());
  EXPECT_EQ(mapper.ToGridX(-3.0), 0u);
  // A zero-area rect maps to a single cell, identical for both paths.
  const GridRect g = mapper.ToGrid(Rect{0.3, 0.4, 0.3, 0.4});
  EXPECT_EQ(g.CellCount(), 1u);
  EXPECT_EQ(g, mapper.ToGrid(Rect{0.3, 0.4, 0.3, 0.4}));
  // Out-of-world rects clamp to the same border cells as their in-world
  // intersection.
  const GridRect clamped = mapper.ToGrid(Rect{0.9, 0.9, 1.5, 1.5});
  EXPECT_EQ(clamped.xhi, mapper.max_coord());
  EXPECT_EQ(clamped.yhi, mapper.max_coord());
}

}  // namespace
}  // namespace zdb
